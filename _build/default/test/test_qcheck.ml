(* QCheck property tests on the core data structures, registered as
   alcotest cases via QCheck_alcotest.  (The heavier whole-program
   properties — soundness against the interpreter, semantic preservation —
   live in test_props.ml with the program generator.) *)

module Clattice = Ipcp_core.Clattice
module Symexpr = Ipcp_vn.Symexpr
module Jumpfn = Ipcp_core.Jumpfn
open Ipcp_frontend.Names

(* ------------------------------------------------------------------ *)
(* Generators *)

let lattice_gen : Clattice.t QCheck.Gen.t =
  QCheck.Gen.(
    frequency
      [
        (1, return Clattice.Top);
        (1, return Clattice.Bottom);
        (3, map (fun n -> Clattice.Const n) (int_range (-5) 5));
      ])

let lattice_arb =
  QCheck.make ~print:Clattice.to_string lattice_gen

let sym_names = [ "a"; "b"; "c" ]

let symexpr_gen : Symexpr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map Symexpr.const (int_range (-6) 6);
        map Symexpr.sym (oneofl sym_names);
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (2, map2 Symexpr.add (self (depth - 1)) (self (depth - 1)));
            (2, map2 Symexpr.sub (self (depth - 1)) (self (depth - 1)));
            (2, map2 Symexpr.mul (self (depth - 1)) leaf);
            (1, map2 Symexpr.div (self (depth - 1)) leaf);
            (1, map2 Symexpr.mod_ (self (depth - 1)) leaf);
            (1, map2 Symexpr.max_ (self (depth - 1)) (self (depth - 1)));
            (1, map Symexpr.abs_ (self (depth - 1)));
            (1, map Symexpr.neg (self (depth - 1)));
          ])
    3

let symexpr_arb = QCheck.make ~print:Symexpr.to_string symexpr_gen

let env_gen : (string -> int option) QCheck.Gen.t =
  QCheck.Gen.(
    map
      (fun vals ->
        let bound = List.combine sym_names vals in
        fun s -> List.assoc_opt s bound)
      (list_repeat (List.length sym_names) (int_range (-9) 9)))

(* ------------------------------------------------------------------ *)
(* Lattice laws (Figure 1) *)

let lattice_props =
  let open QCheck in
  [
    Test.make ~count:500 ~name:"meet commutative" (pair lattice_arb lattice_arb)
      (fun (a, b) -> Clattice.equal (Clattice.meet a b) (Clattice.meet b a));
    Test.make ~count:500 ~name:"meet associative"
      (triple lattice_arb lattice_arb lattice_arb) (fun (a, b, c) ->
        Clattice.equal
          (Clattice.meet (Clattice.meet a b) c)
          (Clattice.meet a (Clattice.meet b c)));
    Test.make ~count:500 ~name:"meet idempotent" lattice_arb (fun a ->
        Clattice.equal (Clattice.meet a a) a);
    Test.make ~count:500 ~name:"top is identity, bottom absorbs" lattice_arb
      (fun a ->
        Clattice.equal (Clattice.meet Clattice.Top a) a
        && Clattice.equal (Clattice.meet Clattice.Bottom a) Clattice.Bottom);
    Test.make ~count:500 ~name:"meet only descends (depth-2 bound)"
      (pair lattice_arb lattice_arb) (fun (a, b) ->
        Clattice.height (Clattice.meet a b) <= min (Clattice.height a) (Clattice.height b));
    Test.make ~count:500 ~name:"leq is a partial order under meet"
      (triple lattice_arb lattice_arb lattice_arb) (fun (a, b, c) ->
        (* transitivity on sampled triples *)
        (not (Clattice.leq a b && Clattice.leq b c)) || Clattice.leq a c);
  ]

(* ------------------------------------------------------------------ *)
(* Polynomial algebra *)

let symexpr_props =
  let open QCheck in
  [
    Test.make ~count:300 ~name:"commutative ring laws"
      (triple symexpr_arb symexpr_arb symexpr_arb) (fun (a, b, c) ->
        Symexpr.(
          equal (add a b) (add b a)
          && equal (mul a b) (mul b a)
          && equal (add (add a b) c) (add a (add b c))
          && equal (mul a (add b c)) (add (mul a b) (mul a c))
          && equal (sub a a) zero
          && equal (add a zero) a
          && equal (mul a (const 1)) a));
    Test.make ~count:300 ~name:"eval is a homomorphism where defined"
      (QCheck.pair (QCheck.pair symexpr_arb symexpr_arb)
         (QCheck.make env_gen))
      (fun ((a, b), env) ->
        let check sym_op conc_op =
          match (Symexpr.eval env a, Symexpr.eval env b) with
          | Some va, Some vb -> (
              match conc_op va vb with
              | Some expected -> Symexpr.eval env (sym_op a b) = Some expected
              | None -> true)
          | _ -> true
        in
        let open Ipcp_frontend.Ast in
        check Symexpr.add (eval_binop Add)
        && check Symexpr.sub (eval_binop Sub)
        && check Symexpr.mul (eval_binop Mul)
        && check Symexpr.div (eval_binop Div)
        && check Symexpr.max_ (fun x y -> eval_intrin Imax [ x; y ]));
    Test.make ~count:300 ~name:"support bounds the symbols eval reads"
      (QCheck.pair symexpr_arb (QCheck.make env_gen)) (fun (e, env) ->
        (* restricting the environment to the support never changes the
           result *)
        let sup = Symexpr.support e in
        let restricted s = if SS.mem s sup then env s else None in
        Symexpr.eval env e = Symexpr.eval restricted e);
    Test.make ~count:300 ~name:"subst of identity is identity" symexpr_arb
      (fun e -> Symexpr.equal (Symexpr.subst (fun _ -> None) e) e);
  ]

(* ------------------------------------------------------------------ *)
(* Jump-function evaluation is monotone in the environment *)

let jf_props =
  let jf_gen =
    QCheck.Gen.(
      frequency
        [
          (1, return Jumpfn.Jbottom);
          (2, map (fun c -> Jumpfn.Jconst c) (int_range (-5) 5));
          (2, map (fun s -> Jumpfn.Jvar s) (oneofl sym_names));
          (3, map (fun e -> Jumpfn.Jexpr e) symexpr_gen);
        ])
  in
  let jf_arb = QCheck.make ~print:(Fmt.str "%a" Jumpfn.pp) jf_gen in
  let lat_env_gen =
    QCheck.Gen.(
      map
        (fun vals ->
          let bound = List.combine sym_names vals in
          fun s ->
            Option.value ~default:Clattice.Bottom (List.assoc_opt s bound))
        (list_repeat (List.length sym_names) lattice_gen))
  in
  [
    QCheck.Test.make ~count:500
      ~name:"Jumpfn.eval monotone: lower inputs give lower outputs"
      (QCheck.pair jf_arb (QCheck.pair (QCheck.make lat_env_gen) (QCheck.make lat_env_gen)))
      (fun (jf, (e1, e2)) ->
        (* build the pointwise meet of the two environments: env12 <= e1 *)
        let e12 s = Clattice.meet (e1 s) (e2 s) in
        Clattice.leq (Jumpfn.eval jf e12) (Jumpfn.eval jf e1));
    QCheck.Test.make ~count:500 ~name:"Jumpfn.eval of constants ignores env"
      (QCheck.pair (QCheck.make lat_env_gen) QCheck.small_int)
      (fun (env, c) ->
        Clattice.equal (Jumpfn.eval (Jumpfn.Jconst c) env) (Clattice.Const c));
  ]

let suites =
  [
    ("qcheck-lattice", List.map QCheck_alcotest.to_alcotest lattice_props);
    ("qcheck-symexpr", List.map QCheck_alcotest.to_alcotest symexpr_props);
    ("qcheck-jumpfn", List.map QCheck_alcotest.to_alcotest jf_props);
  ]
