(* IR substrate tests: CFG lowering, dominators, SSA invariants, liveness,
   reaching definitions. *)

open Ipcp_frontend
open Names
module Cfg = Ipcp_ir.Cfg
module Dom = Ipcp_ir.Dom
module Ssa = Ipcp_ir.Ssa
module Instr = Ipcp_ir.Instr
module Liveness = Ipcp_ir.Liveness
module Reach = Ipcp_dataflow.Reach
module Generator = Ipcp_gen.Generator

let cfgs_of src =
  let symtab = Sema.parse_and_analyze ~file:"<ir>" src in
  (symtab, Ipcp_ir.Lower.lower_program symtab)

let gen_cfgs seed =
  cfgs_of
    (Generator.generate
       ~params:{ Generator.default with Generator.seed }
       ())

let all_sources =
  List.map
    (fun (p : Ipcp_suite.Programs.program) -> p.Ipcp_suite.Programs.source)
    Ipcp_suite.Programs.all

(* ------------------------------------------------------------------ *)
(* Dominators *)

let dom_tests =
  [
    Alcotest.test_case "CHK dominators agree with naive algorithm" `Quick
      (fun () ->
        let check cfg =
          let dom = Dom.compute cfg in
          let naive = Dom.dominators_naive cfg in
          List.iter
            (fun b ->
              List.iter
                (fun d ->
                  if not (Dom.dominates dom d b) then
                    Alcotest.failf "%s: naive says %d dom %d, CHK disagrees"
                      cfg.Cfg.proc_name d b)
                naive.(b);
              (* and conversely: CHK's dominators appear in the naive set *)
              List.iter
                (fun d ->
                  if Dom.dominates dom d b && not (List.mem d naive.(b)) then
                    Alcotest.failf "%s: CHK says %d dom %d, naive disagrees"
                      cfg.Cfg.proc_name d b)
                (Dom.reachable_blocks dom))
            (Dom.reachable_blocks dom)
        in
        List.iter
          (fun src -> SM.iter (fun _ cfg -> check cfg) (snd (cfgs_of src)))
          all_sources;
        for seed = 0 to 14 do
          SM.iter (fun _ cfg -> check cfg) (snd (gen_cfgs seed))
        done);
    Alcotest.test_case "dominance frontier characterisation" `Quick
      (fun () ->
        (* b ∈ DF(a) iff a dominates a predecessor of b but does not
           strictly dominate b *)
        let check cfg =
          let dom = Dom.compute cfg in
          let preds = Cfg.preds cfg in
          let reach = Cfg.reachable cfg in
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  let expected =
                    List.exists
                      (fun p -> reach.(p) && Dom.dominates dom a p)
                      preds.(b)
                    && not (a <> b && Dom.dominates dom a b)
                  in
                  let got = List.mem b (Dom.frontier dom a) in
                  if got <> expected then
                    Alcotest.failf "%s: DF(%d) ∋ %d mismatch (got %b)"
                      cfg.Cfg.proc_name a b got)
                (Dom.reachable_blocks dom))
            (Dom.reachable_blocks dom)
        in
        for seed = 0 to 9 do
          SM.iter (fun _ cfg -> check cfg) (snd (gen_cfgs seed))
        done);
  ]

(* ------------------------------------------------------------------ *)
(* SSA invariants *)

let ssa_tests =
  [
    Alcotest.test_case "single assignment" `Quick (fun () ->
        let check cfg =
          let ssa = Ssa.convert cfg in
          let defs = Hashtbl.create 64 in
          let def v =
            if Hashtbl.mem defs v then
              Alcotest.failf "%s: %s defined twice" cfg.Cfg.proc_name v;
            Hashtbl.add defs v ()
          in
          Array.iter
            (fun (b : Cfg.block) ->
              List.iter (fun (p : Cfg.phi) -> def p.Cfg.dest) b.Cfg.phis;
              List.iter
                (fun i -> Option.iter def (Instr.def i))
                b.Cfg.instrs)
            ssa.Cfg.blocks
        in
        for seed = 0 to 14 do
          SM.iter (fun _ cfg -> check cfg) (snd (gen_cfgs seed))
        done);
    Alcotest.test_case "uses dominated by definitions" `Quick (fun () ->
        let check cfg =
          let ssa = Ssa.convert cfg in
          let dom = Dom.compute ssa in
          (* map each SSA name to its defining block *)
          let def_block = Hashtbl.create 64 in
          Array.iter
            (fun (b : Cfg.block) ->
              List.iter
                (fun (p : Cfg.phi) -> Hashtbl.add def_block p.Cfg.dest b.Cfg.bid)
                b.Cfg.phis;
              List.iter
                (fun i ->
                  Option.iter (fun v -> Hashtbl.add def_block v b.Cfg.bid) (Instr.def i))
                b.Cfg.instrs)
            ssa.Cfg.blocks;
          let check_use here v =
            if not (Ssa.is_entry_version v) then
              match Hashtbl.find_opt def_block v with
              | None ->
                  Alcotest.failf "%s: use of undefined SSA name %s"
                    cfg.Cfg.proc_name v
              | Some d ->
                  if not (Dom.dominates dom d here) then
                    Alcotest.failf "%s: def of %s in B%d does not dominate use in B%d"
                      cfg.Cfg.proc_name v d here
          in
          Array.iter
            (fun (b : Cfg.block) ->
              List.iter
                (fun i -> List.iter (check_use b.Cfg.bid) (Instr.uses i))
                b.Cfg.instrs;
              (* phi arguments must be dominated by their defs at the
                 corresponding predecessor's exit *)
              List.iter
                (fun (p : Cfg.phi) ->
                  List.iter
                    (fun (pred, v) ->
                      if not (Ssa.is_entry_version v) then
                        match Hashtbl.find_opt def_block v with
                        | None ->
                            Alcotest.failf "%s: phi arg %s undefined"
                              cfg.Cfg.proc_name v
                        | Some d ->
                            if not (Dom.dominates dom d pred) then
                              Alcotest.failf
                                "%s: phi arg %s def B%d not dominating pred B%d"
                                cfg.Cfg.proc_name v d pred)
                    p.Cfg.srcs)
                b.Cfg.phis)
            ssa.Cfg.blocks
        in
        for seed = 0 to 14 do
          SM.iter (fun _ cfg -> check cfg) (snd (gen_cfgs seed))
        done);
    Alcotest.test_case "phi arity matches predecessors" `Quick (fun () ->
        let check cfg =
          let ssa = Ssa.convert cfg in
          let preds = Cfg.preds ssa in
          Array.iter
            (fun (b : Cfg.block) ->
              List.iter
                (fun (p : Cfg.phi) ->
                  let srcs = List.map fst p.Cfg.srcs |> List.sort compare in
                  let ps = List.sort compare preds.(b.Cfg.bid) in
                  if srcs <> ps then
                    Alcotest.failf "%s B%d: phi sources %a vs preds %a"
                      cfg.Cfg.proc_name b.Cfg.bid
                      Fmt.(Dump.list int)
                      srcs
                      Fmt.(Dump.list int)
                      ps)
                b.Cfg.phis)
            ssa.Cfg.blocks
        in
        for seed = 0 to 14 do
          SM.iter (fun _ cfg -> check cfg) (snd (gen_cfgs seed))
        done);
    Alcotest.test_case "exit snapshots name valid versions" `Quick (fun () ->
        for seed = 0 to 9 do
          let _, cfgs = gen_cfgs seed in
          SM.iter
            (fun _ cfg ->
              let conv = Ssa.convert_full cfg in
              List.iter
                (fun (bid, term, env) ->
                  (match term with
                  | Cfg.Treturn | Cfg.Tstop -> ()
                  | _ -> Alcotest.fail "exit snapshot on non-exit block");
                  ignore bid;
                  SM.iter
                    (fun base v ->
                      Alcotest.(check string)
                        "base name preserved" base (Ssa.base_name v))
                    env)
                conv.Ssa.exits)
            cfgs
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Liveness and reaching definitions *)

let live_src =
  {|
PROGRAM p
  INTEGER a, b, c
  a = 1
  b = 2
  IF (a .GT. 0) THEN
    c = b
  ELSE
    c = 3
  ENDIF
  PRINT *, c
END
|}

let dataflow_tests =
  [
    Alcotest.test_case "liveness: straight-line facts" `Quick (fun () ->
        let symtab, cfgs = cfgs_of live_src in
        let cfg = SM.find "p" cfgs in
        let psym = Symtab.proc symtab "p" in
        let live =
          Liveness.compute ~formals:(Symtab.formals psym)
            ~globals:(Symtab.global_names symtab) cfg
        in
        (* nothing is live out of a main program's exit *)
        Array.iteri
          (fun i (b : Cfg.block) ->
            match b.Cfg.term with
            | Cfg.Tstop ->
                Alcotest.(check int)
                  "exit live-out empty" 0
                  (SS.cardinal live.Liveness.live_out.(i))
            | _ -> ())
          cfg.Cfg.blocks;
        (* 'b' is live into the branch blocks (used by c = b) *)
        let b_live_somewhere =
          Array.exists (fun s -> SS.mem "b" s) live.Liveness.live_in
        in
        Alcotest.(check bool) "b live on some path" true b_live_somewhere);
    Alcotest.test_case "liveness transfer equations hold at fixpoint" `Quick
      (fun () ->
        for seed = 0 to 9 do
          let symtab, cfgs = gen_cfgs seed in
          SM.iter
            (fun p cfg ->
              let psym = Symtab.proc symtab p in
              let live =
                Liveness.compute ~formals:(Symtab.formals psym)
                  ~globals:(Symtab.global_names symtab) cfg
              in
              let reach = Cfg.reachable cfg in
              Array.iteri
                (fun i (b : Cfg.block) ->
                  if reach.(i) then begin
                    let expect =
                      Liveness.transfer_block b live.Liveness.live_out.(i)
                    in
                    if not (SS.equal expect live.Liveness.live_in.(i)) then
                      Alcotest.failf "%s B%d: live-in not a fixpoint" p i
                  end)
                cfg.Cfg.blocks)
            cfgs
        done);
    Alcotest.test_case "reaching definitions: kills and merges" `Quick
      (fun () ->
        let _, cfgs = cfgs_of live_src in
        let cfg = SM.find "p" cfgs in
        let r = Reach.compute cfg in
        (* at the join block (PRINT), two defs of c reach *)
        let join =
          Array.to_list cfg.Cfg.blocks
          |> List.find (fun (b : Cfg.block) ->
                 List.exists
                   (function Instr.Iprint _ -> true | _ -> false)
                   b.Cfg.instrs)
        in
        let defs_of_c = Reach.reaching_defs r ~bid:join.Cfg.bid "c" in
        Alcotest.(check int) "two defs of c reach the join" 2
          (List.length defs_of_c);
        (* only one def of a reaches anywhere after its kill *)
        let defs_of_a = Reach.reaching_defs r ~bid:join.Cfg.bid "a" in
        Alcotest.(check int) "one def of a" 1 (List.length defs_of_a));
  ]

let suites =
  [ ("ir-dominators", dom_tests); ("ir-ssa", ssa_tests); ("ir-dataflow", dataflow_tests) ]
