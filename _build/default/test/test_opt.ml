(* Unit tests for the source-level optimisations: folding, pruning,
   useless-assignment elimination. *)

open Ipcp_frontend
module Fold = Ipcp_opt.Fold
module Dce = Ipcp_opt.Dce

(* go through Sema so intrinsics and names are resolved, as in the real
   pipeline *)
let parse_body src =
  let symtab = Sema.parse_and_analyze ~file:"<opt>" src in
  (Symtab.main_proc symtab).Symtab.proc.Ast.body

let print_body body = String.concat "" (List.map Pretty.stmt_to_string body)

let check_transform name f src expected =
  Alcotest.test_case name `Quick (fun () ->
      let got = print_body (f (parse_body ("PROGRAM p\n" ^ src ^ "END\n"))) in
      let want = print_body (parse_body ("PROGRAM p\n" ^ expected ^ "END\n")) in
      Alcotest.(check string) "transformed" want got)

let fold_tests =
  [
    check_transform "folds literal arithmetic" Fold.fold_stmts
      "x = 2 + 3 * 4\n" "x = 14\n";
    check_transform "folds intrinsics and unary" Fold.fold_stmts
      "x = max(2, 3) + abs(-4) - mod(9, 4)\n" "x = 6\n";
    check_transform "never folds division by literal zero" Fold.fold_stmts
      "x = 1 / 0\n" "x = 1 / 0\n";
    check_transform "folds relations to boolean conditions" Fold.fold_stmts
      "IF (2 .LT. 3) THEN\n y = 1\nENDIF\n"
      "IF (.TRUE.) THEN\n y = 1\nENDIF\n";
    check_transform "short-circuit .AND. drops unevaluated side"
      Fold.fold_stmts
      "IF (1 .EQ. 2 .AND. x .GT. 0) THEN\n y = 1\nENDIF\n"
      "IF (.FALSE.) THEN\n y = 1\nENDIF\n";
    check_transform "keeps symbolic operands" Fold.fold_stmts
      "x = y + 2 * 3\n" "x = y + 6\n";
  ]

let prune_tests =
  [
    check_transform "drops false arms, unwraps true arms" Dce.prune_stmts
      "IF (.FALSE.) THEN\n x = 1\nELSE\n x = 2\nENDIF\n" "x = 2\n";
    check_transform "true first branch replaces the whole IF" Dce.prune_stmts
      "IF (.TRUE.) THEN\n x = 1\nELSE\n x = 2\nENDIF\n" "x = 1\n";
    check_transform "middle false arm removed, others kept" Dce.prune_stmts
      "IF (a .GT. 0) THEN\n x = 1\nELSEIF (.FALSE.) THEN\n x = 2\nELSE\n x = 3\nENDIF\n"
      "IF (a .GT. 0) THEN\n x = 1\nELSE\n x = 3\nENDIF\n";
    check_transform "zero-trip DO keeps only the index assignment"
      Dce.prune_stmts "DO i = 5, 2\n x = 1\nENDDO\n" "i = 5\n";
    check_transform "normal DO kept" Dce.prune_stmts
      "DO i = 1, 3\n x = 1\nENDDO\n" "DO i = 1, 3\n x = 1\nENDDO\n";
    check_transform "false WHILE removed" Dce.prune_stmts
      "WHILE (.FALSE.)\n x = 1\nENDWHILE\n" "";
    check_transform "code after RETURN dropped" Dce.prune_stmts
      "x = 1\nRETURN\nx = 2\n" "x = 1\nRETURN\n";
    check_transform "code after STOP dropped" Dce.prune_stmts
      "x = 1\nSTOP\nx = 2\n" "x = 1\nSTOP\n";
    check_transform "CONTINUE removed" Dce.prune_stmts
      "CONTINUE\nx = 1\n" "x = 1\n";
  ]

let dead_tests =
  [
    Alcotest.test_case "useless assignment removed, used one kept" `Quick
      (fun () ->
        let src =
          {|
PROGRAM p
  INTEGER a, b
  a = 1
  b = 2
  a = 3
  PRINT *, a
END
|}
        in
        let symtab = Sema.parse_and_analyze ~file:"<o>" src in
        let cfgs = Ipcp_ir.Lower.lower_program symtab in
        let cg =
          Ipcp_callgraph.Callgraph.build ~main:symtab.Symtab.main
            ~order:symtab.Symtab.order cfgs
        in
        let mr = Ipcp_summary.Modref.compute symtab cfgs cg in
        let prog =
          List.map
            (fun p -> (Symtab.proc symtab p).Symtab.proc)
            symtab.Symtab.order
        in
        let cleaned = Dce.eliminate_dead symtab mr prog in
        let body = (List.hd cleaned).Ast.body in
        (* a = 1 (dead: overwritten) and b = 2 (dead: never used) vanish *)
        Alcotest.(check int) "two statements remain" 2 (List.length body));
    Alcotest.test_case "assignments with unsafe RHS are kept" `Quick
      (fun () ->
        let src =
          "PROGRAM p\nINTEGER a, z\nz = 0\na = 1 / z\nPRINT *, z\nEND\n"
        in
        let symtab = Sema.parse_and_analyze ~file:"<o>" src in
        let cfgs = Ipcp_ir.Lower.lower_program symtab in
        let cg =
          Ipcp_callgraph.Callgraph.build ~main:symtab.Symtab.main
            ~order:symtab.Symtab.order cfgs
        in
        let mr = Ipcp_summary.Modref.compute symtab cfgs cg in
        let prog =
          List.map
            (fun p -> (Symtab.proc symtab p).Symtab.proc)
            symtab.Symtab.order
        in
        let cleaned = Dce.eliminate_dead symtab mr prog in
        (* a is dead but 1/z may fault: the assignment must stay *)
        Alcotest.(check int) "nothing deleted" 3
          (List.length (List.hd cleaned).Ast.body));
    Alcotest.test_case "by-reference output kept alive through callee REF"
      `Quick (fun () ->
        let src =
          {|
PROGRAM p
  INTEGER x
  x = 5
  CALL use(x)
END
SUBROUTINE use(v)
  INTEGER v
  PRINT *, v
END
|}
        in
        let symtab = Sema.parse_and_analyze ~file:"<o>" src in
        let cfgs = Ipcp_ir.Lower.lower_program symtab in
        let cg =
          Ipcp_callgraph.Callgraph.build ~main:symtab.Symtab.main
            ~order:symtab.Symtab.order cfgs
        in
        let mr = Ipcp_summary.Modref.compute symtab cfgs cg in
        let prog =
          List.map
            (fun p -> (Symtab.proc symtab p).Symtab.proc)
            symtab.Symtab.order
        in
        let cleaned = Dce.eliminate_dead symtab mr prog in
        Alcotest.(check int) "x = 5 kept" 2
          (List.length (List.hd cleaned).Ast.body));
  ]

let suites =
  [ ("opt-fold", fold_tests); ("opt-prune", prune_tests); ("opt-dce", dead_tests) ]
