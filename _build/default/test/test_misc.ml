(* Remaining coverage: the generic dataflow functor (backward direction),
   the cloning advisor, and suite metadata sanity. *)

open Ipcp_frontend
open Names
module Cfg = Ipcp_ir.Cfg
module Instr = Ipcp_ir.Instr
module Liveness = Ipcp_ir.Liveness
module Dataflow = Ipcp_dataflow.Dataflow
module Driver = Ipcp_core.Driver
module Cloning = Ipcp_core.Cloning

(* liveness re-expressed through the generic functor, to cross-check both
   the functor's backward mode and the dedicated implementation *)
module LiveL = struct
  type t = SS.t option

  let top = None

  let meet a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (SS.union a b)

  let equal a b =
    match (a, b) with
    | None, None -> true
    | Some a, Some b -> SS.equal a b
    | _ -> false

  let pp ppf = function
    | None -> Fmt.string ppf "T"
    | Some s -> Fmt.(list string) ppf (SS.elements s)
end

module LiveSolver = Dataflow.Make (LiveL)

let functor_liveness (cfg : Cfg.t) ~formals ~globals =
  let exit = Liveness.exit_live ~cfg ~formals ~globals in
  let transfer bid v =
    let out =
      match v with
      | None -> SS.empty
      | Some s -> s
    in
    (* for boundary blocks the framework injects [init] as the input *)
    Some (Liveness.transfer_block cfg.Cfg.blocks.(bid) out)
  in
  (* The generic framework applies [init] at Treturn AND Tstop blocks; the
     dedicated implementation distinguishes them (nothing is live at
     STOP).  Compare only on procedures without STOP, which the test
     selects. *)
  LiveSolver.solve ~direction:Dataflow.Backward cfg ~init:(Some exit)
    ~transfer

let dataflow_tests =
  [
    Alcotest.test_case "generic backward solver matches dedicated liveness"
      `Quick (fun () ->
        for seed = 0 to 9 do
          let src =
            Ipcp_gen.Generator.generate
              ~params:{ Ipcp_gen.Generator.default with Ipcp_gen.Generator.seed }
              ()
          in
          let symtab = Sema.parse_and_analyze ~file:"<m>" src in
          let cfgs = Ipcp_ir.Lower.lower_program symtab in
          SM.iter
            (fun p cfg ->
              let has_stop =
                Array.exists
                  (fun (b : Cfg.block) -> b.Cfg.term = Cfg.Tstop)
                  cfg.Cfg.blocks
              in
              if (not has_stop) || p <> symtab.Symtab.main then
                if not has_stop then begin
                  let psym = Symtab.proc symtab p in
                  let formals = Symtab.formals psym in
                  let globals = Symtab.global_names symtab in
                  let dedicated = Liveness.compute ~formals ~globals cfg in
                  let generic = functor_liveness cfg ~formals ~globals in
                  let reach = Cfg.reachable cfg in
                  Array.iteri
                    (fun i (_ : Cfg.block) ->
                      if reach.(i) then
                        let g =
                          match generic.LiveSolver.outv.(i) with
                          | Some s -> s
                          | None -> SS.empty
                        in
                        if not (SS.equal g dedicated.Liveness.live_in.(i))
                        then
                          Alcotest.failf "seed %d %s B%d: live sets differ"
                            seed p i)
                    cfg.Cfg.blocks
                end)
            cfgs
        done);
  ]

(* ------------------------------------------------------------------ *)

let cloning_tests =
  [
    Alcotest.test_case "advisor groups edges by constant vector" `Quick
      (fun () ->
        let src =
          {|
PROGRAM p
  INTEGER v(8)
  CALL k(v, 1)
  CALL k(v, 1)
  CALL k(v, 2)
END
SUBROUTINE k(a, s)
  INTEGER a(8), s
  a(1) = s
END
|}
        in
        let _, t = Driver.analyze_source ~file:"<c>" src in
        match Cloning.advise t with
        | [ a ] ->
            Alcotest.(check string) "proc" "k" a.Cloning.a_proc;
            Alcotest.(check int) "two clones" 2 (List.length a.Cloning.a_groups);
            Alcotest.(check bool) "gained > 0" true (a.Cloning.a_gained > 0);
            (* the two s=1 sites share a clone *)
            let sizes =
              List.map (fun g -> List.length g.Cloning.cg_sites) a.Cloning.a_groups
              |> List.sort compare
            in
            Alcotest.(check (list int)) "site split" [ 1; 2 ] sizes
        | l -> Alcotest.failf "expected one advice, got %d" (List.length l));
    Alcotest.test_case "no advice when edges agree" `Quick (fun () ->
        let src =
          "PROGRAM p\nINTEGER v(8)\nCALL k(v, 1)\nCALL k(v, 1)\nEND\nSUBROUTINE k(a, s)\nINTEGER a(8), s\na(1) = s\nEND\n"
        in
        let _, t = Driver.analyze_source ~file:"<c>" src in
        Alcotest.(check int) "no advice" 0 (List.length (Cloning.advise t)));
  ]

(* ------------------------------------------------------------------ *)

let metadata_tests =
  [
    Alcotest.test_case "expected tables cover exactly the suite" `Quick
      (fun () ->
        let names = Ipcp_suite.Programs.names |> List.sort compare in
        let t2 =
          List.map fst Ipcp_suite.Expected.table2 |> List.sort compare
        in
        let t3 =
          List.map fst Ipcp_suite.Expected.table3 |> List.sort compare
        in
        Alcotest.(check (list string)) "table2 rows" names t2;
        Alcotest.(check (list string)) "table3 rows" names t3);
    Alcotest.test_case "paper rows satisfy their own orderings" `Quick
      (fun () ->
        (* a consistency check on the transcription of the paper's data *)
        List.iter
          (fun (name, (r : Ipcp_suite.Expected.row2)) ->
            let open Ipcp_suite.Expected in
            if
              not
                (r.t2_lit_r <= r.t2_intra_r
                && r.t2_intra_r <= r.t2_pass_r
                && r.t2_pass_r = r.t2_poly_r
                && r.t2_poly <= r.t2_poly_r)
            then Alcotest.failf "paper row %s inconsistent" name)
          Ipcp_suite.Expected.table2);
    Alcotest.test_case "characteristics computer is sane" `Quick (fun () ->
        List.iter
          (fun (p : Ipcp_suite.Programs.program) ->
            let c = Ipcp_suite.Programs.characteristics p in
            if c.Ipcp_suite.Programs.c_procs < 2 then
              Alcotest.failf "%s: too few procedures" p.Ipcp_suite.Programs.name;
            if c.Ipcp_suite.Programs.c_lines < c.Ipcp_suite.Programs.c_procs
            then Alcotest.failf "%s: lines < procs?" p.Ipcp_suite.Programs.name)
          Ipcp_suite.Programs.all);
  ]

let suites =
  [
    ("dataflow-generic", dataflow_tests);
    ("cloning", cloning_tests);
    ("suite-metadata", metadata_tests);
  ]
