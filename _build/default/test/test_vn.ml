(* Value-numbering substrate tests: the symbolic polynomial algebra
   (qcheck laws), and the two value-numbering algorithms (hash-based GVN
   vs Alpern-Wegman-Zadeck partitioning). *)

open Ipcp_frontend
open Names
module Symexpr = Ipcp_vn.Symexpr
module Gvn = Ipcp_vn.Gvn
module Awz = Ipcp_vn.Awz
module Generator = Ipcp_gen.Generator

(* ------------------------------------------------------------------ *)
(* A qcheck generator of symbolic expressions over three symbols,
   remembering a concrete environment so evaluation laws can be tested. *)

let syms = [ "a"; "b"; "c" ]

let rec gen_expr (rng : Random.State.t) depth : Symexpr.t =
  if depth = 0 then gen_leaf rng
  else
    match Random.State.int rng 8 with
    | 0 -> Symexpr.add (gen_expr rng (depth - 1)) (gen_expr rng (depth - 1))
    | 1 -> Symexpr.sub (gen_expr rng (depth - 1)) (gen_expr rng (depth - 1))
    | 2 -> Symexpr.mul (gen_expr rng (depth - 1)) (gen_leaf rng)
    | 3 -> Symexpr.div (gen_expr rng (depth - 1)) (gen_leaf rng)
    | 4 -> Symexpr.mod_ (gen_expr rng (depth - 1)) (gen_leaf rng)
    | 5 -> Symexpr.max_ (gen_expr rng (depth - 1)) (gen_expr rng (depth - 1))
    | 6 -> Symexpr.abs_ (gen_expr rng (depth - 1))
    | _ -> Symexpr.neg (gen_expr rng (depth - 1))

and gen_leaf rng =
  match Random.State.int rng 3 with
  | 0 -> Symexpr.const (Random.State.int rng 13 - 4)
  | _ -> Symexpr.sym (List.nth syms (Random.State.int rng 3))

let env_of rng =
  let vals = List.map (fun s -> (s, Random.State.int rng 21 - 10)) syms in
  fun s -> List.assoc_opt s vals

let forall_exprs ?(n = 500) name f =
  Alcotest.test_case name `Quick (fun () ->
      let rng = Random.State.make [| 99 |] in
      for i = 0 to n - 1 do
        f i rng
      done)

let symexpr_tests =
  [
    forall_exprs "ring laws: +, * commutative and associative" (fun _ rng ->
        let a = gen_expr rng 3 and b = gen_expr rng 3 and c = gen_expr rng 2 in
        let open Symexpr in
        assert (equal (add a b) (add b a));
        assert (equal (mul a b) (mul b a));
        assert (equal (add (add a b) c) (add a (add b c)));
        assert (equal (mul (mul a b) c) (mul a (mul b c)));
        assert (equal (mul a (add b c)) (add (mul a b) (mul a c)));
        assert (equal (sub a a) zero);
        assert (equal (add a zero) a);
        assert (equal (mul a (const 1)) a);
        assert (equal (mul a zero) zero));
    forall_exprs "operations agree with integer arithmetic under eval"
      (fun _ rng ->
        (* the crucial soundness law behind polynomial jump functions:
           whenever concrete evaluation of op(a,b) is defined, the smart
           constructor's result evaluates to the same integer *)
        let a = gen_expr rng 3 and b = gen_expr rng 3 in
        let env = env_of rng in
        let open Symexpr in
        let check_bin sym_op conc_op =
          match (eval env a, eval env b) with
          | Some va, Some vb -> (
              match conc_op va vb with
              | Some expected -> (
                  match eval env (sym_op a b) with
                  | Some got ->
                      if got <> expected then
                        Alcotest.failf "eval mismatch: %s vs %d got %d"
                          (to_string (sym_op a b)) expected got
                  | None ->
                      Alcotest.failf "constructed expr faults but concrete doesn't: %s"
                        (to_string (sym_op a b)))
              | None -> ())
          | _ -> ()
        in
        let open Ipcp_frontend.Ast in
        check_bin Symexpr.add (fun x y -> eval_binop Add x y);
        check_bin Symexpr.sub (fun x y -> eval_binop Sub x y);
        check_bin Symexpr.mul (fun x y -> eval_binop Mul x y);
        check_bin Symexpr.div (fun x y -> eval_binop Div x y);
        check_bin Symexpr.mod_ (fun x y -> eval_intrin Imod [ x; y ]);
        check_bin Symexpr.max_ (fun x y -> eval_intrin Imax [ x; y ]);
        check_bin Symexpr.min_ (fun x y -> eval_intrin Imin [ x; y ]));
    forall_exprs "substitution commutes with evaluation" (fun _ rng ->
        let e = gen_expr rng 3 in
        let r = gen_expr rng 2 in
        let env = env_of rng in
        let lookup s = if s = "a" then Some r else None in
        let composed s = if s = "a" then Symexpr.eval env r else env s in
        match (Symexpr.eval composed e, Symexpr.eval env (Symexpr.subst lookup e)) with
        | Some x, Some y ->
            if x <> y then
              Alcotest.failf "subst law: %d vs %d on %s" x y
                (Symexpr.to_string e)
        | _ -> () (* faults may differ in timing; only defined cases compared *));
    forall_exprs "support is exactly the symbols evaluation needs" ~n:200
      (fun _ rng ->
        let e = gen_expr rng 3 in
        let sup = Symexpr.support e in
        (* binding all supported symbols suffices for evaluation (or the
           expression faults for arithmetic reasons) *)
        let env s = if SS.mem s sup then Some 3 else None in
        match Symexpr.eval env e with
        | Some _ | None -> (
            (* removing a symbol that IS in the support must make
               evaluation fail whenever it previously consulted it;
               weaker check: with no bindings, eval of a sym-containing
               expr is None *)
            if not (SS.is_empty sup) then
              match Symexpr.eval (fun _ -> None) e with
              | None -> ()
              | Some _ ->
                  (* possible: support appears only in positions that
                     cancel, e.g. 0 * sym is normalised away, so a
                     remaining App may ignore it.  Accept folding. *)
                  ()));
    Alcotest.test_case "pass-through detection" `Quick (fun () ->
        assert (Symexpr.as_sym (Symexpr.sym "x") = Some "x");
        assert (Symexpr.as_sym (Symexpr.add (Symexpr.sym "x") (Symexpr.const 0)) = Some "x");
        assert (Symexpr.as_sym (Symexpr.add (Symexpr.sym "x") (Symexpr.const 1)) = None);
        assert (Symexpr.as_sym (Symexpr.mul (Symexpr.sym "x") (Symexpr.const 1)) = Some "x");
        assert (Symexpr.is_const (Symexpr.sub (Symexpr.sym "x") (Symexpr.sym "x")) = Some 0));
    Alcotest.test_case "exact division folds, inexact stays symbolic" `Quick
      (fun () ->
        let x = Symexpr.sym "x" in
        let e1 =
          Symexpr.div
            (Symexpr.add (Symexpr.mul (Symexpr.const 4) x) (Symexpr.const 2))
            (Symexpr.const 2)
        in
        Alcotest.(check string) "4x+2 / 2" "1 + 2*x" (Symexpr.to_string e1);
        let e2 = Symexpr.div (Symexpr.add x (Symexpr.const 1)) (Symexpr.const 2) in
        Alcotest.(check bool) "x+1 / 2 is opaque" true
          (Symexpr.as_sym e2 = None && Symexpr.is_const e2 = None));
  ]

(* ------------------------------------------------------------------ *)
(* GVN vs AWZ *)

let ssa_of_src src =
  let symtab = Sema.parse_and_analyze ~file:"<vn>" src in
  Ipcp_ir.Lower.lower_program symtab |> SM.map Ipcp_ir.Ssa.convert

let vn_tests =
  [
    Alcotest.test_case "hash GVN congruences included in AWZ" `Quick
      (fun () ->
        for seed = 0 to 19 do
          let src =
            Generator.generate
              ~params:{ Generator.default with Generator.seed }
              ()
          in
          SM.iter
            (fun pname ssa ->
              let g = Gvn.compute ssa in
              let a = Awz.compute ssa in
              List.iter
                (fun cls ->
                  match cls with
                  | rep :: rest ->
                      List.iter
                        (fun v ->
                          if not (Awz.congruent a rep v) then
                            Alcotest.failf
                              "seed %d %s: GVN says %s ≡ %s, AWZ disagrees"
                              seed pname rep v)
                        rest
                  | [] -> ())
                (Gvn.classes g))
            (ssa_of_src src)
        done);
    Alcotest.test_case "AWZ proves loop-carried congruence GVN misses" `Quick
      (fun () ->
        (* two identical inductions: i and j stay congruent through the
           loop; optimistic AWZ proves it, pessimistic hash GVN cannot *)
        let src =
          {|
PROGRAM p
  INTEGER i, j, k
  i = 0
  j = 0
  k = 0
  WHILE (k .LT. 10)
    i = i + 1
    j = j + 1
    k = k + 1
  ENDWHILE
  PRINT *, i, j
END
|}
        in
        let ssa = SM.find "p" (ssa_of_src src) in
        let a = Awz.compute ssa in
        let g = Gvn.compute ssa in
        (* find the printed operands: the final SSA names of i and j *)
        let printed = ref [] in
        Ipcp_ir.Cfg.iter_instrs
          (fun _ instr ->
            match instr with
            | Ipcp_ir.Instr.Iprint ops ->
                printed := Ipcp_ir.Instr.operand_vars ops
            | _ -> ())
          ssa;
        match !printed with
        | [ vi; vj ] ->
            Alcotest.(check bool) "AWZ: i ≡ j" true (Awz.congruent a vi vj);
            Alcotest.(check bool) "hash GVN misses it" false
              (Gvn.congruent g vi vj)
        | _ -> Alcotest.fail "unexpected print shape");
    Alcotest.test_case "GVN numbers pure expressions congruently" `Quick
      (fun () ->
        let src =
          "PROGRAM p\nINTEGER a, b, x, y\na = 1\nb = 2\nx = a + b\ny = b + a\nPRINT *, x, y\nEND\n"
        in
        let ssa = SM.find "p" (ssa_of_src src) in
        let g = Gvn.compute ssa in
        let printed = ref [] in
        Ipcp_ir.Cfg.iter_instrs
          (fun _ instr ->
            match instr with
            | Ipcp_ir.Instr.Iprint ops ->
                printed := Ipcp_ir.Instr.operand_vars ops
            | _ -> ())
          ssa;
        match !printed with
        | [ vx; vy ] ->
            Alcotest.(check bool) "a+b ≡ b+a (commutative canon)" true
              (Gvn.congruent g vx vy)
        | _ -> Alcotest.fail "unexpected print shape");
  ]

let suites = [ ("vn-symexpr", symexpr_tests); ("vn-gvn-awz", vn_tests) ]
