(* Frontend tests: lexer, parser, sema, pretty round-trip. *)

open Ipcp_frontend

let parse src = Parser.parse ~file:"<test>" src

let analyze src = Sema.parse_and_analyze ~file:"<test>" src

let check_parses name src =
  Alcotest.test_case name `Quick (fun () ->
      match Diag.guard_s (fun () -> parse src) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "parse failed: %s" e)

let check_analyzes name src =
  Alcotest.test_case name `Quick (fun () ->
      match Diag.guard_s (fun () -> analyze src) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "sema failed: %s" e)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_sema_rejects name needle src =
  Alcotest.test_case name `Quick (fun () ->
      match Diag.guard_s (fun () -> analyze src) with
      | Ok _ -> Alcotest.failf "expected sema error containing %S" needle
      | Error e ->
          if not (contains ~needle e) then
            Alcotest.failf "error %S does not mention %S" e needle)

(* ------------------------------------------------------------------ *)

let simple_program =
  {|
PROGRAM main
  INTEGER x, y
  x = 10
  y = x * 2 + 1
  CALL work(x, y)
  PRINT *, y
END

SUBROUTINE work(a, b)
  INTEGER a, b
  IF (a .GT. 0) THEN
    b = a + b
  ELSE
    b = 0
  ENDIF
END
|}

let lexer_tests =
  let open Token in
  let lex s = List.map fst (Lexer.tokenize ~file:"<t>" s) in
  [
    Alcotest.test_case "keywords case-insensitive" `Quick (fun () ->
        assert (lex "program Program PROGRAM" = [ PROGRAM; PROGRAM; PROGRAM; EOF ]));
    Alcotest.test_case "identifiers lowered" `Quick (fun () ->
        assert (lex "FooBar" = [ IDENT "foobar"; EOF ]));
    Alcotest.test_case "dotted ops" `Quick (fun () ->
        assert (lex "a .LT. b .AND. .NOT. c" =
                [ IDENT "a"; LT; IDENT "b"; AND; NOT; IDENT "c"; EOF ]));
    Alcotest.test_case "comments stripped" `Quick (fun () ->
        assert (lex "x = 1 ! a comment\n" = [ IDENT "x"; ASSIGN; INT 1; NEWLINE; EOF ]));
    Alcotest.test_case "power vs star" `Quick (fun () ->
        assert (lex "a ** b * c" = [ IDENT "a"; POW; IDENT "b"; STAR; IDENT "c"; EOF ]));
    Alcotest.test_case "continuation" `Quick (fun () ->
        assert (lex "x = 1 + &\n 2\n" =
                [ IDENT "x"; ASSIGN; INT 1; PLUS; INT 2; NEWLINE; EOF ]));
    Alcotest.test_case "bad char rejected" `Quick (fun () ->
        match Diag.guard (fun () -> lex "x # y") with
        | Error { phase = Diag.Lex; _ } -> ()
        | _ -> Alcotest.fail "expected lexical error");
  ]

let parser_tests =
  [
    check_parses "simple program" simple_program;
    check_parses "do loop with step"
      "PROGRAM p\nINTEGER i, s\nDO i = 1, 10, 2\n s = s + i\nENDDO\nEND\n";
    check_parses "while loop"
      "PROGRAM p\nINTEGER i\ni = 0\nWHILE (i .LT. 10)\n i = i + 1\nENDWHILE\nEND\n";
    check_parses "logical if" "PROGRAM p\nINTEGER x\nIF (x .EQ. 0) x = 1\nEND\n";
    check_parses "elseif chain"
      "PROGRAM p\nINTEGER x, y\nIF (x .LT. 0) THEN\n y = -1\nELSEIF (x .EQ. 0) THEN\n y = 0\nELSE\n y = 1\nENDIF\nEND\n";
    check_parses "parenthesised conditions"
      "PROGRAM p\nINTEGER a, b, c\nIF ((a + b .GT. c) .AND. (a .LT. b .OR. .NOT. (c .EQ. 0))) THEN\n a = 1\nENDIF\nEND\n";
    check_parses "common parameter data"
      "PROGRAM p\nPARAMETER (n = 10)\nCOMMON /blk/ g, arr(100)\nINTEGER x(n)\nDATA g /42/\nx(1) = g\nEND\n";
    check_parses "print read star forms"
      "PROGRAM p\nINTEGER x\nREAD *, x\nPRINT *, x + 1\nPRINT x\nEND\n";
    Alcotest.test_case "assignment precedence shape" `Quick (fun () ->
        match parse "PROGRAM p\nINTEGER x\nx = 1 + 2 * 3 ** 2\nEND\n" with
        | [ { Ast.body = [ Ast.Assign (_, e, _) ]; _ } ] ->
            Alcotest.(check string) "expr" "1 + 2 * 3 ** 2"
              (Pretty.expr_to_string e)
        | _ -> Alcotest.fail "unexpected parse shape");
    Alcotest.test_case "declarations after statements rejected" `Quick
      (fun () ->
        match Diag.guard (fun () -> parse "PROGRAM p\nx = 1\nINTEGER x\nEND\n") with
        | Error { phase = Diag.Parse; _ } -> ()
        | _ -> Alcotest.fail "expected syntax error");
  ]

let sema_tests =
  [
    check_analyzes "simple program" simple_program;
    check_analyzes "function call and intrinsics"
      {|
PROGRAM p
  INTEGER x
  x = twice(3) + mod(10, 3) + max(1, 2) + abs(-4)
  PRINT *, x
END

INTEGER FUNCTION twice(n)
  INTEGER n
  twice = 2 * n
END
|};
    check_analyzes "whole array actual"
      {|
PROGRAM p
  INTEGER a(10)
  CALL fill(a, 10)
END

SUBROUTINE fill(v, n)
  INTEGER v(10), n, i
  DO i = 1, n
    v(i) = 0
  ENDDO
END
|};
    check_analyzes "implicit locals" "PROGRAM p\nimpl = 3\nPRINT *, impl\nEND\n";
    check_sema_rejects "unknown subroutine" "undefined subroutine"
      "PROGRAM p\nCALL nosuch(1)\nEND\n";
    check_sema_rejects "arity mismatch" "expects"
      "PROGRAM p\nCALL s(1, 2)\nEND\nSUBROUTINE s(a)\nINTEGER a\nEND\n";
    check_sema_rejects "assign to parameter" "named constant"
      "PROGRAM p\nPARAMETER (n = 1)\nn = 2\nEND\n";
    check_sema_rejects "scalar subscripted" "cannot be subscripted"
      "PROGRAM p\nINTEGER x\nx(1) = 2\nEND\n";
    check_sema_rejects "array without subscript" "without a subscript"
      "PROGRAM p\nINTEGER a(5), x\nx = a\nEND\n";
    check_sema_rejects "two mains" "PROGRAM"
      "PROGRAM p\nEND\nPROGRAM q\nEND\n";
    check_sema_rejects "inconsistent common" "member list"
      "PROGRAM p\nCOMMON /b/ x, y\nEND\nSUBROUTINE s\nCOMMON /b/ y, x\nEND\n";
    check_sema_rejects "common name reused" "COMMON member"
      "PROGRAM p\nCOMMON /b/ g\nEND\nSUBROUTINE s\nINTEGER g\ng = 1\nEND\n";
    check_sema_rejects "zero do step" "nonzero"
      "PROGRAM p\nINTEGER i\nDO i = 1, 10, 0\nENDDO\nEND\n";
    check_sema_rejects "call a function" "use it in an expression"
      "PROGRAM p\nCALL f(1)\nEND\nINTEGER FUNCTION f(x)\nINTEGER x\nf = x\nEND\n";
    Alcotest.test_case "parameter folding" `Quick (fun () ->
        let t =
          analyze
            "PROGRAM p\nPARAMETER (n = 4, m = n * n + 2)\nINTEGER x\nx = m\nEND\n"
        in
        let ps = Symtab.main_proc t in
        match Symtab.var ps "m" with
        | Some { Symtab.kind = Symtab.Const 18; _ } -> ()
        | _ -> Alcotest.fail "m should fold to 18");
    Alcotest.test_case "data recorded on globals" `Quick (fun () ->
        let t =
          analyze "PROGRAM p\nCOMMON /b/ g\nDATA g /7/\nPRINT *, g\nEND\n"
        in
        match Names.SM.find "g" t.Symtab.globals with
        | { Symtab.init = Some 7; _ } -> ()
        | _ -> Alcotest.fail "g should be DATA-initialised to 7");
  ]

(* ------------------------------------------------------------------ *)
(* Pretty round-trip on the hand-written programs *)

let roundtrip_tests =
  let rt name src =
    Alcotest.test_case ("roundtrip " ^ name) `Quick (fun () ->
        let p1 = parse src in
        let s1 = Pretty.program_to_string p1 in
        let p2 = parse s1 in
        let s2 = Pretty.program_to_string p2 in
        Alcotest.(check string) "print . parse . print fixpoint" s1 s2)
  in
  [
    rt "simple" simple_program;
    rt "decls"
      "PROGRAM p\nPARAMETER (n = 10)\nCOMMON /blk/ g, arr(100)\nINTEGER x(n), y\nDATA g /-3/\nx(1) = g - -2\ny = -x(1) ** 2\nEND\n";
    rt "control"
      "PROGRAM p\nINTEGER i, x\nDO i = 1, 10, 2\n IF (i .GT. 5 .AND. .NOT. (x .EQ. 0)) THEN\n  x = x / i\n ELSE\n  x = mod(x, 3)\n ENDIF\nENDDO\nWHILE (x .GT. 0)\n x = x - 1\nENDWHILE\nEND\n";
  ]

let suites =
  [
    ("lexer", lexer_tests);
    ("parser", parser_tests);
    ("sema", sema_tests);
    ("pretty", roundtrip_tests);
  ]
