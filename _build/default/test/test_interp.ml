(* Interpreter semantics tests: the ground truth must itself be right. *)

open Ipcp_frontend
module Interp = Ipcp_interp.Interp

let run ?input ?seed src =
  Interp.run ?input ?seed (Sema.parse_and_analyze ~file:"<interp>" src)

let check_output name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let r = run src in
      (match r.Interp.status with
      | Interp.Completed | Interp.Stopped -> ()
      | s -> Alcotest.failf "unexpected status %a" Interp.pp_status s);
      Alcotest.(check (list int)) "output" expected r.Interp.output)

let tests =
  [
    check_output "arithmetic and precedence"
      "PROGRAM p\nINTEGER x\nx = 2 + 3 * 4 - 6 / 2\nPRINT *, x, 2 ** 3 ** 2, -2 ** 2\nEND\n"
      (* 2+12-3 = 11; ** right-assoc: 2^(3^2) = 512; (-2)**2 = 4 per our
         parse (unary binds the base) *)
      [ 11; 512; 4 ];
    check_output "integer division truncates toward zero"
      "PROGRAM p\nPRINT *, 7 / 2, -7 / 2, mod(7, 2), mod(-7, 2)\nEND\n"
      [ 3; -3; 1; -1 ];
    check_output "intrinsics"
      "PROGRAM p\nPRINT *, max(3, -4), min(3, -4), abs(-9)\nEND\n"
      [ 3; -4; 9 ];
    check_output "do loop accumulates"
      "PROGRAM p\nINTEGER i, s\ns = 0\nDO i = 1, 5\n s = s + i\nENDDO\nPRINT *, s, i\nEND\n"
      (* after the loop the index has run past the limit *)
      [ 15; 6 ];
    check_output "do with negative step"
      "PROGRAM p\nINTEGER i, s\ns = 0\nDO i = 5, 1, -2\n s = s + i\nENDDO\nPRINT *, s\nEND\n"
      [ 9 ];
    check_output "zero-trip do still assigns the index"
      "PROGRAM p\nINTEGER i, s\ns = 0\nDO i = 3, 1\n s = 99\nENDDO\nPRINT *, s, i\nEND\n"
      [ 0; 3 ];
    check_output "do bounds evaluated once"
      "PROGRAM p\nINTEGER i, n, s\nn = 3\ns = 0\nDO i = 1, n\n n = 100\n s = s + 1\nENDDO\nPRINT *, s\nEND\n"
      [ 3 ];
    check_output "while loop"
      "PROGRAM p\nINTEGER i\ni = 1\nWHILE (i .LT. 100)\n i = i * 2\nENDWHILE\nPRINT *, i\nEND\n"
      [ 128 ];
    check_output "by-reference parameters mutate the caller"
      {|
PROGRAM p
  INTEGER x
  x = 1
  CALL bump(x)
  PRINT *, x
END
SUBROUTINE bump(a)
  INTEGER a
  a = a + 41
END
|}
      [ 42 ];
    check_output "by-value expression actuals do not"
      {|
PROGRAM p
  INTEGER x
  x = 1
  CALL bump(x + 0)
  PRINT *, x
END
SUBROUTINE bump(a)
  INTEGER a
  a = a + 41
END
|}
      [ 1 ];
    check_output "array element passed by reference"
      {|
PROGRAM p
  INTEGER v(3)
  v(2) = 10
  CALL bump(v(2))
  PRINT *, v(2)
END
SUBROUTINE bump(a)
  INTEGER a
  a = a + 1
END
|}
      [ 11 ];
    check_output "whole arrays share storage"
      {|
PROGRAM p
  INTEGER v(4), i
  DO i = 1, 4
    v(i) = 0
  ENDDO
  CALL fill(v)
  PRINT *, v(1), v(4)
END
SUBROUTINE fill(w)
  INTEGER w(4)
  w(1) = 7
  w(4) = 9
END
|}
      [ 7; 9 ];
    check_output "COMMON is program-wide storage"
      {|
PROGRAM p
  COMMON /blk/ g
  g = 5
  CALL touch
  PRINT *, g
END
SUBROUTINE touch
  COMMON /blk/ g
  g = g * 3
END
|}
      [ 15 ];
    check_output "DATA initialises globals"
      "PROGRAM p\nCOMMON /b/ g\nDATA g /123/\nPRINT *, g\nEND\n" [ 123 ];
    check_output "functions return values and see arguments"
      {|
PROGRAM p
  INTEGER r
  r = addup(20, 22)
  PRINT *, r
END
INTEGER FUNCTION addup(a, b)
  INTEGER a, b
  addup = a + b
END
|}
      [ 42 ];
    check_output "recursion works (subroutine form)"
      (* inside an INTEGER FUNCTION the function name denotes the result
         variable, so direct self-recursion is not expressible (as in
         FORTRAN); recursive subroutines are *)
      {|
PROGRAM p
  INTEGER r
  r = 1
  CALL factr(6, r)
  PRINT *, r
END
SUBROUTINE factr(n, acc)
  INTEGER n, acc, m
  IF (n .GT. 1) THEN
    acc = acc * n
    m = n - 1
    CALL factr(m, acc)
  ENDIF
END
|}
      [ 720 ];
    check_output "mutual recursion through functions"
      {|
PROGRAM p
  PRINT *, iseven(10), iseven(7)
END
INTEGER FUNCTION iseven(n)
  INTEGER n, m
  IF (n .EQ. 0) THEN
    iseven = 1
  ELSE
    m = n - 1
    iseven = isodd(m)
  ENDIF
END
INTEGER FUNCTION isodd(n)
  INTEGER n, m
  IF (n .EQ. 0) THEN
    isodd = 0
  ELSE
    m = n - 1
    isodd = iseven(m)
  ENDIF
END
|}
      [ 1; 0 ];
    check_output "short-circuit .AND. skips the right operand"
      {|
PROGRAM p
  COMMON /fx/ cnt
  INTEGER x
  cnt = 0
  x = 0
  IF (x .NE. 0 .AND. probe() .GT. 0) THEN
    PRINT *, 1
  ENDIF
  PRINT *, cnt
END
INTEGER FUNCTION probe()
  COMMON /fx/ cnt
  cnt = cnt + 1
  probe = 1
END
|}
      [ 0 ];
    check_output "logical IF"
      "PROGRAM p\nINTEGER x\nx = 3\nIF (x .GT. 2) x = x * 10\nPRINT *, x\nEND\n"
      [ 30 ];
    check_output "STOP halts mid-program"
      "PROGRAM p\nPRINT *, 1\nSTOP\nPRINT *, 2\nEND\n" [ 1 ];
    check_output "RETURN leaves a subroutine early"
      {|
PROGRAM p
  INTEGER x
  x = 0
  CALL early(x)
  PRINT *, x
END
SUBROUTINE early(a)
  INTEGER a
  a = 1
  RETURN
  a = 2
END
|}
      [ 1 ];
    Alcotest.test_case "READ consumes input" `Quick (fun () ->
        let r =
          run ~input:[ 10; 20 ]
            "PROGRAM p\nINTEGER a, b\nREAD *, a, b\nPRINT *, a + b\nEND\n"
        in
        Alcotest.(check (list int)) "sum" [ 30 ] r.Interp.output);
    Alcotest.test_case "division by zero faults" `Quick (fun () ->
        let r = run "PROGRAM p\nINTEGER x, y\ny = 0\nx = 1 / y\nPRINT *, x\nEND\n" in
        match r.Interp.status with
        | Interp.Fault _ -> Alcotest.(check (list int)) "no output" [] r.Interp.output
        | s -> Alcotest.failf "expected fault, got %a" Interp.pp_status s);
    Alcotest.test_case "subscript out of bounds faults" `Quick (fun () ->
        let r = run "PROGRAM p\nINTEGER v(3)\nv(4) = 1\nEND\n" in
        match r.Interp.status with
        | Interp.Fault _ -> ()
        | s -> Alcotest.failf "expected fault, got %a" Interp.pp_status s);
    Alcotest.test_case "undefined reads are seed-deterministic" `Quick
      (fun () ->
        let src = "PROGRAM p\nINTEGER x\nPRINT *, x\nEND\n" in
        let a = run ~seed:5 src and b = run ~seed:5 src and c = run ~seed:6 src in
        Alcotest.(check (list int)) "same seed same value" a.Interp.output b.Interp.output;
        if a.Interp.output = c.Interp.output then
          Alcotest.fail "different seeds should (almost surely) differ");
    Alcotest.test_case "entry trace records formals and globals" `Quick
      (fun () ->
        let r =
          run
            {|
PROGRAM p
  COMMON /b/ g
  g = 9
  CALL s(3)
END
SUBROUTINE s(a)
  COMMON /b/ g
  INTEGER a
  g = g + a
END
|}
        in
        let entries = List.map (fun e -> e.Interp.e_proc) r.Interp.trace in
        Alcotest.(check (list string)) "entries in order" [ "p"; "s" ] entries;
        let s_entry = List.nth r.Interp.trace 1 in
        Alcotest.(check (option (option int)))
          "formal a = 3" (Some (Some 3))
          (List.assoc_opt "a" s_entry.Interp.e_vals);
        Alcotest.(check (option (option int)))
          "global g = 9" (Some (Some 9))
          (List.assoc_opt "g" s_entry.Interp.e_vals));
  ]

let suites = [ ("interp", tests) ]
