test/test_suite.ml: Alcotest Diag Ipcp_core Ipcp_frontend Ipcp_interp Ipcp_opt Ipcp_suite List Option Sema
