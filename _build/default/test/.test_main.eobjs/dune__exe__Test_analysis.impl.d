test/test_analysis.ml: Alcotest Fmt Ipcp_callgraph Ipcp_core Ipcp_frontend Ipcp_gen Ipcp_interp Ipcp_ir Ipcp_summary List Names SM SS Sema Symtab
