test/test_qcheck.ml: Fmt Ipcp_core Ipcp_frontend Ipcp_vn List Option QCheck QCheck_alcotest SS Test
