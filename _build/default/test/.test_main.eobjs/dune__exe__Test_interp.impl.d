test/test_interp.ml: Alcotest Ipcp_frontend Ipcp_interp List Sema
