test/test_alt.ml: Alcotest Array Fmt Ipcp_core Ipcp_frontend Ipcp_gen Ipcp_ir Ipcp_opt Ipcp_suite List Names SM Sema Symtab
