test/test_main.ml: Alcotest Test_alt Test_analysis Test_core Test_frontend Test_interp Test_ir Test_misc Test_opt Test_props Test_qcheck Test_suite Test_vn
