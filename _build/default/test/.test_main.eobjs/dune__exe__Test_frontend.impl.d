test/test_frontend.ml: Alcotest Ast Diag Ipcp_frontend Lexer List Names Parser Pretty Sema String Symtab Token
