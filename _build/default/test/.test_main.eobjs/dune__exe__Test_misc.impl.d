test/test_misc.ml: Alcotest Array Fmt Ipcp_core Ipcp_dataflow Ipcp_frontend Ipcp_gen Ipcp_ir Ipcp_suite List Names SM SS Sema Symtab
