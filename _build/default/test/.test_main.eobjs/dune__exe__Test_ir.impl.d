test/test_ir.ml: Alcotest Array Dump Fmt Hashtbl Ipcp_dataflow Ipcp_frontend Ipcp_gen Ipcp_ir Ipcp_suite List Names Option SM SS Sema Symtab
