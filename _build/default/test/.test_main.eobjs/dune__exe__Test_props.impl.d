test/test_props.ml: Alcotest Diag Fmt Ipcp_core Ipcp_frontend Ipcp_gen Ipcp_interp Ipcp_opt List Names Parser Pretty Sema
