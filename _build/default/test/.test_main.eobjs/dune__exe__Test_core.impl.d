test/test_core.ml: Alcotest Fmt Ipcp_core Ipcp_frontend Ipcp_opt List Pretty Sema String
