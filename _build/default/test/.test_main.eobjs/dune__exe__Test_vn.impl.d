test/test_vn.ml: Alcotest Ipcp_frontend Ipcp_gen Ipcp_ir Ipcp_vn List Names Random SM SS Sema
