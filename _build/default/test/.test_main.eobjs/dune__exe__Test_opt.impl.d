test/test_opt.ml: Alcotest Ast Ipcp_callgraph Ipcp_frontend Ipcp_ir Ipcp_opt Ipcp_summary List Pretty Sema String Symtab
