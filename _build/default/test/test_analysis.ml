(* Tests for the interprocedural substrate: call graph, SCCs, MOD/REF
   summaries, return jump functions, and solver behaviour. *)

open Ipcp_frontend
open Names
module Callgraph = Ipcp_callgraph.Callgraph
module Scc = Ipcp_callgraph.Scc
module Modref = Ipcp_summary.Modref
module Driver = Ipcp_core.Driver
module Config = Ipcp_core.Config
module Solver = Ipcp_core.Solver
module Returnjf = Ipcp_core.Returnjf
module Symeval = Ipcp_core.Symeval

let setup src =
  let symtab = Sema.parse_and_analyze ~file:"<an>" src in
  let cfgs = Ipcp_ir.Lower.lower_program symtab in
  let cg =
    Callgraph.build ~main:symtab.Symtab.main ~order:symtab.Symtab.order cfgs
  in
  (symtab, cfgs, cg)

let src_diamond =
  {|
PROGRAM main
  INTEGER x
  x = 1
  CALL a(x)
  CALL b(x)
END
SUBROUTINE a(p)
  INTEGER p
  CALL c(p)
END
SUBROUTINE b(q)
  INTEGER q
  CALL c(q)
END
SUBROUTINE c(r)
  INTEGER r
  r = r + 1
END
|}

let src_recursive =
  {|
PROGRAM main
  INTEGER x
  x = even(10)
  PRINT *, x
END
INTEGER FUNCTION even(n)
  INTEGER n, m
  IF (n .EQ. 0) THEN
    even = 1
  ELSE
    m = n - 1
    even = odd(m)
  ENDIF
END
INTEGER FUNCTION odd(n)
  INTEGER n, m
  IF (n .EQ. 0) THEN
    odd = 0
  ELSE
    m = n - 1
    odd = even(m)
  ENDIF
END
|}

let callgraph_tests =
  [
    Alcotest.test_case "edges per call site, callees and callers" `Quick
      (fun () ->
        let _, _, cg = setup src_diamond in
        Alcotest.(check (list string)) "main calls" [ "a"; "b" ]
          (Callgraph.callees cg "main");
        Alcotest.(check (list string)) "c's callers" [ "a"; "b" ]
          (Callgraph.callers cg "c");
        Alcotest.(check int) "c has two in-edges" 2
          (List.length (Callgraph.edges_in cg "c"));
        Alcotest.(check bool) "all reachable" true
          (SS.cardinal (Callgraph.reachable_from_main cg) = 4));
    Alcotest.test_case "SCC condensation: bottom-up visits callees first"
      `Quick (fun () ->
        let _, _, cg = setup src_diamond in
        let scc = Scc.compute cg in
        let order = List.concat (Scc.bottom_up scc) in
        let pos p =
          let rec go i = function
            | [] -> -1
            | x :: r -> if x = p then i else go (i + 1) r
          in
          go 0 order
        in
        Alcotest.(check bool) "c before a" true (pos "c" < pos "a");
        Alcotest.(check bool) "a before main" true (pos "a" < pos "main");
        Alcotest.(check bool) "no recursion" false
          (Scc.is_recursive cg scc "c"));
    Alcotest.test_case "mutual recursion forms one SCC" `Quick (fun () ->
        let _, _, cg = setup src_recursive in
        let scc = Scc.compute cg in
        Alcotest.(check bool) "even recursive" true
          (Scc.is_recursive cg scc "even");
        Alcotest.(check bool) "odd recursive" true
          (Scc.is_recursive cg scc "odd");
        let comp =
          List.find (fun c -> List.mem "even" c) (Scc.bottom_up scc)
        in
        Alcotest.(check bool) "same component" true (List.mem "odd" comp));
  ]

(* ------------------------------------------------------------------ *)

let src_modref =
  {|
PROGRAM main
  COMMON /s/ gmod, gref, gquiet
  INTEGER a, b
  a = 1
  b = 2
  gmod = 0
  gref = 0
  gquiet = 0
  CALL direct(a, b)
  CALL indirect(a, b)
END
SUBROUTINE direct(x, y)
  COMMON /s/ gmod, gref, gquiet
  INTEGER x, y
  x = gref + 1
  gmod = y
END
SUBROUTINE indirect(u, v)
  INTEGER u, v
  CALL direct(u, v)
END
|}

let modref_tests =
  [
    Alcotest.test_case "immediate MOD and REF" `Quick (fun () ->
        let symtab, cfgs, cg = setup src_modref in
        let mr = Modref.compute symtab cfgs cg in
        let md = Modref.mod_of mr "direct" in
        Alcotest.(check bool) "direct modifies formal 0" true
          (Modref.IS.mem (Modref.Pformal 0) md);
        Alcotest.(check bool) "direct does not modify formal 1" false
          (Modref.IS.mem (Modref.Pformal 1) md);
        Alcotest.(check bool) "direct modifies gmod" true
          (Modref.IS.mem (Modref.Pglobal "gmod") md);
        Alcotest.(check bool) "direct does not modify gref" false
          (Modref.IS.mem (Modref.Pglobal "gref") md);
        let rf = Modref.ref_of mr "direct" in
        Alcotest.(check bool) "direct references gref" true
          (Modref.IS.mem (Modref.Pglobal "gref") rf));
    Alcotest.test_case "MOD propagates through call sites" `Quick (fun () ->
        let symtab, cfgs, cg = setup src_modref in
        let mr = Modref.compute symtab cfgs cg in
        let md = Modref.mod_of mr "indirect" in
        Alcotest.(check bool) "indirect modifies formal 0 (via direct)" true
          (Modref.IS.mem (Modref.Pformal 0) md);
        Alcotest.(check bool) "but not formal 1" false
          (Modref.IS.mem (Modref.Pformal 1) md);
        Alcotest.(check bool) "and gmod" true
          (Modref.IS.mem (Modref.Pglobal "gmod") md));
    Alcotest.test_case "globals outside MOD(main's callee) are untouched"
      `Quick (fun () ->
        (* dynamic check of MOD soundness for globals: record each global
           before and after every top-level call in random programs; a
           change implies membership in MOD of the callee *)
        for seed = 0 to 19 do
          let src =
            Ipcp_gen.Generator.generate
              ~params:{ Ipcp_gen.Generator.default with Ipcp_gen.Generator.seed }
              ()
          in
          let symtab, cfgs, cg = setup src in
          let mr = Modref.compute symtab cfgs cg in
          let r = Ipcp_interp.Interp.run symtab in
          (* entries appear in call order; compare each procedure entry's
             global snapshot with the next one at the same or shallower
             depth.  A cheap sufficient check: if NO procedure's MOD
             contains global g, then g has the same value at every entry
             after its first definition...  Simpler still and fully valid:
             if g is in no MOD set and not assigned by main, its value is
             identical in every snapshot. *)
          let never_modified g =
            List.for_all
              (fun p ->
                not (Modref.IS.mem (Modref.Pglobal g) (Modref.mod_of mr p)))
              cg.Callgraph.procs
          in
          List.iter
            (fun g ->
              (* [never_modified] quantifies over every procedure,
                 including the main program *)
              if never_modified g then
                let vals =
                  List.filter_map
                    (fun (e : Ipcp_interp.Interp.entry_snapshot) ->
                      List.assoc_opt g e.Ipcp_interp.Interp.e_vals)
                    r.Ipcp_interp.Interp.trace
                in
                match vals with
                | [] -> ()
                | v0 :: rest ->
                    if not (List.for_all (fun v -> v = v0) rest) then
                      Alcotest.failf "seed %d: global %s changed despite empty MOD"
                        seed g)
            (Symtab.global_names symtab)
        done);
  ]

(* ------------------------------------------------------------------ *)

let retjf_tests =
  [
    Alcotest.test_case "return jump functions: constants, identity, poly"
      `Quick (fun () ->
        let src =
          {|
PROGRAM main
  INTEGER a, b, c
  a = 0
  b = 0
  c = 0
  CALL shapes(a, b, c)
  PRINT *, a, b, c
END
SUBROUTINE shapes(x, y, z)
  INTEGER x, y, z
  x = 77
  z = y * 2 + 1
END
|}
        in
        let symtab = Sema.parse_and_analyze ~file:"<r>" src in
        let t = Driver.analyze symtab in
        let find target =
          Returnjf.find t.Driver.rjfs ~proc:"shapes" ~target
        in
        (match find (Returnjf.RFormal 0) with
        | Some v ->
            Alcotest.(check string) "R for x" "77"
              (Fmt.str "%a" Symeval.pp_value v)
        | None -> Alcotest.fail "no R for x");
        (match find (Returnjf.RFormal 1) with
        | Some v ->
            Alcotest.(check string) "R for y is the identity" "y"
              (Fmt.str "%a" Symeval.pp_value v)
        | None -> Alcotest.fail "no R for y");
        match find (Returnjf.RFormal 2) with
        | Some v ->
            Alcotest.(check string) "R for z is a polynomial of y" "1 + 2*y"
              (Fmt.str "%a" Symeval.pp_value v)
        | None -> Alcotest.fail "no R for z");
    Alcotest.test_case "paper rule: R depending on caller formals is ⊥; the \
                        symbolic extension keeps it" `Quick (fun () ->
        let src =
          {|
PROGRAM main
  CALL outer(21)
END
SUBROUTINE outer(n)
  INTEGER n, r
  r = 0
  CALL double(n, r)
  CALL sink(r)
END
SUBROUTINE double(a, out)
  INTEGER a, out
  out = a * 2
END
SUBROUTINE sink(v)
  INTEGER v
  PRINT *, v
END
|}
        in
        (* r = double's return value 2*a where a is outer's formal: the
           paper's implementation cannot evaluate it ("return jump
           functions that depend on parameters to the calling procedure
           can never be evaluated as constant"), the symbolic extension
           can *)
        let count symbolic_returns =
          let _, t =
            Driver.analyze_source
              ~config:
                {
                  Config.default with
                  Config.jf = Config.Polynomial (* Jexpr must cross the edge *);
                  symbolic_returns;
                }
              ~file:"<r>" src
          in
          Solver.val_of t.Driver.solver "sink" "v"
        in
        Alcotest.(check string) "paper-faithful loses it" "⊥"
          (Ipcp_core.Clattice.to_string (count false));
        Alcotest.(check string) "symbolic extension finds 42" "42"
          (Ipcp_core.Clattice.to_string (count true)));
    Alcotest.test_case "STOP paths do not contribute to return values"
      `Quick (fun () ->
        let src =
          {|
PROGRAM main
  INTEGER a
  a = 0
  CALL maybe(a, 1)
  PRINT *, a
END
SUBROUTINE maybe(x, flag)
  INTEGER x, flag
  IF (flag .EQ. 0) THEN
    x = 111
    STOP
  ENDIF
  x = 5
END
|}
        in
        let symtab = Sema.parse_and_analyze ~file:"<r>" src in
        let t = Driver.analyze symtab in
        match Returnjf.find t.Driver.rjfs ~proc:"maybe" ~target:(Returnjf.RFormal 0) with
        | Some v ->
            Alcotest.(check string) "only the returning path counts" "5"
              (Fmt.str "%a" Symeval.pp_value v)
        | None -> Alcotest.fail "no R");
  ]

(* ------------------------------------------------------------------ *)

let solver_tests =
  [
    Alcotest.test_case "lowerings bounded by twice the VAL entries" `Quick
      (fun () ->
        (* the lattice has depth 2: each (proc, param) can be lowered at
           most twice, which is what bounds the whole propagation *)
        for seed = 0 to 19 do
          let src =
            Ipcp_gen.Generator.generate
              ~params:{ Ipcp_gen.Generator.default with Ipcp_gen.Generator.seed }
              ()
          in
          let _, t = Driver.analyze_source ~file:"<s>" src in
          let entries =
            SM.fold
              (fun _ m acc -> acc + SM.cardinal m)
              t.Driver.solver.Solver.vals 0
          in
          let lowerings = t.Driver.solver.Solver.stats.Solver.lowerings in
          if lowerings > 2 * entries then
            Alcotest.failf "seed %d: %d lowerings for %d entries" seed
              lowerings entries
        done);
    Alcotest.test_case "unreached procedures keep ⊤ VALs" `Quick (fun () ->
        let src =
          {|
PROGRAM main
  PRINT *, 1
END
SUBROUTINE dead(x)
  INTEGER x
  PRINT *, x
END
|}
        in
        let _, t = Driver.analyze_source ~file:"<s>" src in
        Alcotest.(check string) "dead's formal stays ⊤" "⊤"
          (Ipcp_core.Clattice.to_string (Solver.val_of t.Driver.solver "dead" "x")));
  ]

let suites =
  [
    ("callgraph", callgraph_tests);
    ("modref", modref_tests);
    ("returnjf", retjf_tests);
    ("solver", solver_tests);
  ]
