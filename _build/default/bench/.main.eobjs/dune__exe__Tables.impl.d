bench/tables.ml: Fmt Ipcp_core Ipcp_frontend Ipcp_opt Ipcp_suite List Sema
