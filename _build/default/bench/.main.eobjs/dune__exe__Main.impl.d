bench/main.ml: Array Sys Tables Timing
