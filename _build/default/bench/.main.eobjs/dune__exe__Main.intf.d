bench/main.mli:
