bench/timing.ml: Analyze Bechamel Benchmark Float Fmt Hashtbl Instance Ipcp_core Ipcp_frontend Ipcp_gen Ipcp_ir Ipcp_suite List Measure Staged Test Time Toolkit
