(* Value-context tabulation: the soundness keystone against the 1986
   jump-function solver, determinism under parallel evaluation, the
   bounded-table guarantee for recursion groups, and the warm cache.

   The keystone is the refinement relation: every entry constant the
   solver proves must survive in the tabulation's merged projection —
   context sensitivity may only add information, never contradict the
   context-insensitive fixpoint. *)

module Config = Ipcp_core.Config
module Driver = Ipcp_core.Driver
module Generator = Ipcp_gen.Generator
module Programs = Ipcp_suite.Programs
module Registry = Ipcp_contexts.Registry
module Tabulation = Ipcp_contexts.Tabulation
module Compare = Ipcp_contexts.Compare
module Lint = Ipcp_analysis.Lint
module Json = Ipcp_obs.Json

let driver_of ?config ~file src =
  snd (Driver.analyze_source ?config ~file src)

let row_of (p : Programs.program) =
  Compare.run_program ~name:p.Programs.name
    (driver_of ~file:p.Programs.name p.Programs.source)

(* ------------------------------------------------------------------ *)
(* Keystone on the suite *)

let suite_tests =
  [
    Alcotest.test_case "keystone holds on all twelve programs and extras"
      `Quick (fun () ->
        List.iter
          (fun (p : Programs.program) ->
            let r = row_of p in
            (match r.Compare.r_violations with
            | [] -> ()
            | (proc, name, c, m) :: _ ->
                Alcotest.failf "%s: solver has %s.%s = %s but tabulation %s"
                  p.Programs.name proc name c m);
            if r.Compare.r_ctx_consts < r.Compare.r_jf_consts then
              Alcotest.failf "%s: tabulation lost constants (%d < %d)"
                p.Programs.name r.Compare.r_ctx_consts r.Compare.r_jf_consts)
          (Programs.all @ Programs.extras));
    Alcotest.test_case "at least one program is strictly more precise"
      `Quick (fun () ->
        let rows = List.map row_of (Programs.all @ Programs.extras) in
        if
          not
            (List.exists (fun r -> r.Compare.r_extra_consts > 0) rows)
        then Alcotest.fail "no program gained an entry constant");
    Alcotest.test_case
      "ctxdemo: only the context-sensitive ranges decide the subscripts"
      `Quick (fun () ->
        let p = Option.get (Programs.by_name "ctxdemo") in
        let r = row_of p in
        Alcotest.(check int)
          "jf leaves four sites unknown" 4
          r.Compare.r_jf_verdicts.Lint.n_unknown;
        Alcotest.(check int)
          "tabulation decides them all" 0
          r.Compare.r_ctx_verdicts.Lint.n_unknown;
        Alcotest.(check int) "upgraded" 4 r.Compare.r_upgraded;
        Alcotest.(check bool)
          "gains the MOD entry constant" true
          (r.Compare.r_extra_consts >= 1));
  ]

(* ------------------------------------------------------------------ *)
(* Keystone across generator shapes (QCheck) *)

let shapes =
  [
    Generator.Acyclic;
    Generator.Chain;
    Generator.Fanout;
    Generator.Cyclic;
    Generator.Mixed;
  ]

let shape_seed_arb =
  QCheck.make
    ~print:(fun (sh, seed) ->
      Fmt.str "%s seed %d" (Generator.shape_name sh) seed)
    QCheck.Gen.(pair (oneofl shapes) (int_range 0 50))

let prop_keystone =
  QCheck.Test.make ~count:20 ~name:"tabulation refines the solver on every shape"
    shape_seed_arb (fun (shape, seed) ->
      let src =
        Generator.generate
          ~params:{ Generator.default with Generator.seed; shape; n_procs = 8 }
          ()
      in
      let d = driver_of ~file:"<gen>" src in
      let r = Compare.run_program ~name:"gen" d in
      r.Compare.r_violations = []
      && r.Compare.r_ctx_consts >= r.Compare.r_jf_consts)

(* ------------------------------------------------------------------ *)
(* Determinism, recursion bounds, warm cache *)

let gen_src ~shape ~n_procs seed =
  Generator.generate
    ~params:{ Generator.default with Generator.seed; shape; n_procs }
    ()

let procedures_json = function
  | Json.Obj fields -> List.assoc "procedures" fields
  | _ -> Alcotest.fail "table JSON is not an object"

let engine_tests =
  [
    Alcotest.test_case "jobs-1 and jobs-4 tables are byte-identical" `Quick
      (fun () ->
        let src = gen_src ~shape:Generator.Mixed ~n_procs:40 7 in
        let table jobs =
          let d =
            driver_of
              ~config:{ Config.default with Config.jobs }
              ~file:"<gen>" src
          in
          let t = Registry.run_const ~warm:false d in
          ( Fmt.str "%a" Registry.TConst.render_text t,
            Registry.TConst.json t )
        in
        let t1, j1 = table 1 and t4, j4 = table 4 in
        Alcotest.(check string) "rendered tables equal" t1 t4;
        Alcotest.(check bool) "JSON equal" true (j1 = j4));
    Alcotest.test_case "recursion groups stay bounded at ctx-limit 2"
      `Quick (fun () ->
        let src = gen_src ~shape:Generator.Cyclic ~n_procs:12 2 in
        let d = driver_of ~file:"<gen>" src in
        let t = Registry.run_const ~ctx_limit:2 ~warm:false d in
        let s = t.Registry.TConst.summary in
        if s.Tabulation.s_fallbacks < 1 then
          Alcotest.fail "expected at least one fallback context";
        (* at most ctx_limit exact contexts plus one fallback per proc *)
        if s.Tabulation.s_contexts > 3 * (12 + 1) then
          Alcotest.failf "table not bounded: %d contexts"
            s.Tabulation.s_contexts;
        (match Compare.keystone_violations d t with
        | [] -> ()
        | (proc, name, _, _) :: _ ->
            Alcotest.failf "keystone violated at %s.%s" proc name);
        (* the fixpoint is a pure function of the program *)
        let t' = Registry.run_const ~ctx_limit:2 ~warm:false d in
        Alcotest.(check string)
          "re-run identical"
          (Fmt.str "%a" Registry.TConst.render_text t)
          (Fmt.str "%a" Registry.TConst.render_text t'));
    Alcotest.test_case "warm cache seeds exits and preserves the table"
      `Quick (fun () ->
        Registry.reset_caches ();
        let p = Option.get (Programs.by_name "ctxdemo") in
        let d = driver_of ~file:p.Programs.name p.Programs.source in
        let t1 = Registry.run_const ~warm:true d in
        let t2 = Registry.run_const ~warm:true d in
        if t2.Registry.TConst.summary.Tabulation.s_cache_seeds < 1 then
          Alcotest.fail "second run adopted no cached exits";
        Alcotest.(check bool)
          "same contexts and exits" true
          (procedures_json (Registry.TConst.json t1)
          = procedures_json (Registry.TConst.json t2));
        Registry.reset_caches ());
  ]

let suites =
  [
    ("contexts-suite", suite_tests);
    ( "contexts-shapes",
      List.map QCheck_alcotest.to_alcotest [ prop_keystone ] );
    ("contexts-engine", engine_tests);
  ]
