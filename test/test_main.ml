let () =
  Alcotest.run "ipcp"
    (Test_frontend.suites @ Test_core.suites @ Test_props.suites @ Test_ir.suites @ Test_vn.suites @ Test_interp.suites @ Test_analysis.suites @ Test_suite.suites @ Test_alt.suites @ Test_misc.suites @ Test_opt.suites @ Test_qcheck.suites @ Test_lint.suites @ Test_obs.suites @ Test_explain.suites @ Test_par.suites @ Test_incr.suites @ Test_api.suites @ Test_domains.suites @ Test_framework.suites @ Test_serve.suites @ Test_contexts.suites)
