(** Differential tests for the provenance-carrying fixpoint behind
    [ipcp explain].

    The keystone check: for every suite program and every explainable
    domain (const, copyprop, interval), build the derivation tree of
    every procedure's tracked entries and re-evaluate every recorded
    edge against the final fixpoint — {!Ipcp_core.Explain.Make.check}
    must report no violations.  The trees are built from the provenance
    the solver recorded {e during} the solve, so a violation means the
    recorder attributed a value to an edge that does not justify it.

    Also pinned here: the exact literal → pass-through → polynomial
    chain of the matrix300 program (the README walkthrough), and the
    off-by-default contract (no recording, and a clear error from
    explain, when {!Ipcp_core.Provenance} is disabled). *)

module Config = Ipcp_core.Config
module Driver = Ipcp_core.Driver
module Framework = Ipcp_core.Framework
module Provenance = Ipcp_core.Provenance
module Solver = Ipcp_core.Solver
module Explain = Ipcp_core.Explain
module Symtab = Ipcp_frontend.Symtab
module Programs = Ipcp_suite.Programs
module Json = Ipcp_obs.Json

(* polynomial jump functions exercise every edge kind the recorder
   knows (const, passthrough, polynomial, bottom); the sanitizer is off
   because these tests re-analyze the full suite several times *)
let config =
  { Config.default with Config.jf = Config.Polynomial; verify_ir = false }

let analyze ?(config = config) (p : Programs.program) =
  Driver.analyze_source ~config ~file:p.Programs.name p.Programs.source

let program name = List.find (fun p -> p.Programs.name = name) Programs.all

let test_differential domain () =
  let explained = ref 0 in
  List.iter
    (fun (p : Programs.program) ->
      Provenance.with_enabled @@ fun () ->
      let symtab, d = analyze p in
      List.iter
        (fun proc ->
          match Framework.explain ~domain d ~proc () with
          | Error e ->
              Alcotest.failf "%s/%s: explain %s failed: %s" domain
                p.Programs.name proc e
          | Ok x -> (
              incr explained;
              match x.Framework.x_violations with
              | [] -> ()
              | v :: _ as vs ->
                  Alcotest.failf
                    "%s/%s: %d unverified derivation edge(s), first: %s"
                    domain p.Programs.name (List.length vs)
                    (Fmt.str "%a" Explain.pp_violation v)))
        symtab.Symtab.order)
    Programs.all;
  Alcotest.(check bool)
    (domain ^ ": explained some entries")
    true (!explained > 0)

(* the matrix300 walkthrough: a constant literal in main, forwarded
   pass-through into the driver, consumed by a polynomial jump function
   — the chain must read back exactly *)
let test_matrix300_chain () =
  Provenance.with_enabled @@ fun () ->
  let _, d = analyze (program "matrix300") in
  let node =
    match
      Framework.explain ~domain:"const" d ~proc:"mxflop" ~param:"nops" ()
    with
    | Error e -> Alcotest.failf "explain mxflop.nops: %s" e
    | Ok x -> (
        (match x.Framework.x_violations with
        | [] -> ()
        | v :: _ ->
            Alcotest.failf "unverified edge: %s"
              (Fmt.str "%a" Explain.pp_violation v));
        match x.Framework.x_json with
        | Json.Arr [ node ] -> node
        | j -> Alcotest.failf "expected one tree, got %s" (Json.to_string j))
  in
  let str j name =
    match Option.bind (Json.member name j) Json.to_str with
    | Some s -> s
    | None -> Alcotest.failf "node missing %s in %s" name (Json.to_string j)
  in
  let deriv j =
    match Json.member "derivation" j with
    | Some (Json.Obj _ as d) -> d
    | _ -> Alcotest.failf "no derivation in %s" (Json.to_string j)
  in
  let child j =
    match Option.bind (Json.member "children" j) Json.to_list with
    | Some [ c ] -> c
    | Some cs -> Alcotest.failf "expected one child, got %d" (List.length cs)
    | None -> Alcotest.failf "no children array in %s" (Json.to_string j)
  in
  (* mxflop.nops = 440, from mxdrv's polynomial 2*n + n^2 *)
  Alcotest.(check string) "value" "440" (str node "value");
  Alcotest.(check string) "jf kind" "polynomial" (str (deriv node) "jf_kind");
  Alcotest.(check string) "caller" "mxdrv" (str (deriv node) "caller");
  (* ... whose support is mxdrv.n = 20 ... *)
  let n = child node in
  Alcotest.(check string) "support param" "n" (str n "parameter");
  Alcotest.(check string) "support value" "20" (str n "value");
  (* ... derived by a constant jump function at main's call site *)
  Alcotest.(check string) "seed jf" "const" (str (deriv n) "jf_kind");
  Alcotest.(check string) "seed caller" "matrix300" (str (deriv n) "caller")

(* pass-through link of the same chain: the kernels receive n unchanged *)
let test_matrix300_passthrough () =
  Provenance.with_enabled @@ fun () ->
  let _, d = analyze (program "matrix300") in
  match Framework.explain ~domain:"const" d ~proc:"mxk2" ~param:"n" () with
  | Error e -> Alcotest.failf "explain mxk2.n: %s" e
  | Ok x ->
      Alcotest.(check (list string)) "no violations" []
        (List.map
           (fun v -> Fmt.str "%a" Explain.pp_violation v)
           x.Framework.x_violations);
      Alcotest.(check bool) "pass-through edge rendered" true
        (Astring.String.is_infix ~affix:"jf passthrough ⟨n⟩ = 20"
           x.Framework.x_text)

let test_disabled () =
  (* Provenance is off by default: the solver must record nothing and
     explain must say so rather than fabricate a tree *)
  Alcotest.(check bool) "switch off by default" false (Provenance.on ());
  let symtab, d = analyze (program "adm") in
  Alcotest.(check bool) "no provenance on the solver" true
    (d.Driver.solver.Solver.prov = None);
  match Framework.explain ~domain:"const" d ~proc:symtab.Symtab.main () with
  | Ok _ -> Alcotest.fail "explain succeeded without recorded provenance"
  | Error e ->
      Alcotest.(check bool) "error names the switch" true
        (Astring.String.is_infix ~affix:"disabled" e)

let suites =
  [
    ( "explain",
      [
        Alcotest.test_case "differential: const over the suite" `Quick
          (test_differential "const");
        Alcotest.test_case "differential: copyprop over the suite" `Quick
          (test_differential "copyprop");
        Alcotest.test_case "differential: interval over the suite" `Quick
          (test_differential "interval");
        Alcotest.test_case "matrix300 polynomial chain" `Quick
          test_matrix300_chain;
        Alcotest.test_case "matrix300 pass-through link" `Quick
          test_matrix300_passthrough;
        Alcotest.test_case "disabled provenance explains nothing" `Quick
          test_disabled;
      ] );
  ]
