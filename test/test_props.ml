(* Property tests over randomly generated programs.

   The keystone is SOUNDNESS: every (variable, value) pair the analyzer
   places in CONSTANTS(p) must hold at every dynamic entry to p, for every
   analysis configuration.  The interpreter's entry trace is the ground
   truth; undefined variables get random values, so optimistic analyzer
   bugs cannot hide. *)

open Ipcp_frontend
module Config = Ipcp_core.Config
module Driver = Ipcp_core.Driver
module Generator = Ipcp_gen.Generator
module Interp = Ipcp_interp.Interp
module Substitute = Ipcp_opt.Substitute
module Intra = Ipcp_opt.Intra
module Complete = Ipcp_opt.Complete

let gen_src ?(initialised = true) seed =
  Generator.generate
    ~params:{ Generator.default with Generator.seed; initialised }
    ()

let all_configs =
  List.concat_map
    (fun jf ->
      List.concat_map
        (fun return_jfs ->
          List.map
            (fun use_mod ->
              { Config.default with Config.jf; return_jfs; use_mod })
            [ true; false ])
        [ true; false ])
    [ Config.Literal; Config.Intraconst; Config.Passthrough; Config.Polynomial ]

(* ------------------------------------------------------------------ *)
(* Generator validity *)

let generator_tests =
  [
    Alcotest.test_case "generated programs parse and check (100 seeds)"
      `Quick (fun () ->
        for seed = 0 to 99 do
          let src = gen_src seed in
          match Diag.guard_s (fun () -> Sema.parse_and_analyze ~file:"<gen>" src) with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "seed %d: %s\n%s" seed e src
        done);
    Alcotest.test_case "uninitialised variants also check (50 seeds)" `Quick
      (fun () ->
        for seed = 0 to 49 do
          let src = gen_src ~initialised:false seed in
          match Diag.guard_s (fun () -> Sema.parse_and_analyze ~file:"<gen>" src) with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "seed %d: %s" seed e
        done);
    Alcotest.test_case "generated programs terminate in the interpreter"
      `Quick (fun () ->
        for seed = 0 to 49 do
          let src = gen_src seed in
          let symtab = Sema.parse_and_analyze ~file:"<gen>" src in
          let r = Interp.run ~fuel:5_000_000 symtab in
          match r.Interp.status with
          | Interp.Completed | Interp.Stopped | Interp.Fault _ -> ()
          | Interp.Out_of_fuel -> Alcotest.failf "seed %d ran out of fuel" seed
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Soundness: CONSTANTS hold at every dynamic procedure entry *)

let check_soundness ~seed ~config src =
  let symtab = Sema.parse_and_analyze ~file:"<gen>" src in
  let t = Driver.analyze ~config symtab in
  (* two interpreter runs with different undefined-value seeds *)
  List.iter
    (fun iseed ->
      let r = Interp.run ~seed:iseed symtab in
      List.iter
        (fun (snap : Interp.entry_snapshot) ->
          let constants = Driver.constants t snap.Interp.e_proc in
          Names.SM.iter
            (fun name c ->
              match List.assoc_opt name snap.Interp.e_vals with
              | None -> () (* array or untracked: nothing claimed *)
              | Some (Some v) ->
                  if v <> c then
                    Alcotest.failf
                      "seed %d config %s: CONSTANTS(%s) claims %s=%d but a \
                       dynamic entry has %d\n%s"
                      seed
                      (Fmt.str "%a" Config.pp config)
                      snap.Interp.e_proc name c v src
              | Some None ->
                  Alcotest.failf
                    "seed %d config %s: CONSTANTS(%s) claims %s=%d but it is \
                     undefined at a dynamic entry"
                    seed
                    (Fmt.str "%a" Config.pp config)
                    snap.Interp.e_proc name c)
            constants)
        r.Interp.trace)
    [ 7; 1234 ]

let soundness_tests =
  [
    Alcotest.test_case "CONSTANTS sound vs interpreter (all configs)" `Slow
      (fun () ->
        for seed = 0 to 39 do
          let src = gen_src seed in
          List.iter (fun config -> check_soundness ~seed ~config src) all_configs
        done);
    Alcotest.test_case "CONSTANTS sound on uninitialised programs" `Slow
      (fun () ->
        for seed = 0 to 39 do
          let src = gen_src ~initialised:false seed in
          List.iter
            (fun config -> check_soundness ~seed ~config src)
            [
              Config.default;
              { Config.default with Config.jf = Config.Polynomial };
              { Config.default with Config.use_mod = false };
              { Config.default with Config.return_jfs = false };
            ]
        done);
    Alcotest.test_case "symbolic-returns extension is also sound" `Slow
      (fun () ->
        for seed = 0 to 29 do
          let src = gen_src seed in
          check_soundness ~seed
            ~config:
              {
                Config.default with
                Config.jf = Config.Polynomial;
                symbolic_returns = true;
              }
            src
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Monotonicity between configurations *)

let count config src =
  let _, t = Driver.analyze_source ~config ~file:"<gen>" src in
  Substitute.count t

let monotonicity_tests =
  [
    Alcotest.test_case "literal <= intra <= pass-through <= polynomial"
      `Quick (fun () ->
        for seed = 0 to 29 do
          let src = gen_src seed in
          let c jf = count { Config.default with Config.jf } src in
          let l = c Config.Literal
          and i = c Config.Intraconst
          and p = c Config.Passthrough
          and y = c Config.Polynomial in
          if not (l <= i && i <= p && p <= y) then
            Alcotest.failf "seed %d: %d %d %d %d not ascending" seed l i p y
        done);
    Alcotest.test_case "no MOD <= with MOD; no return JFs <= with" `Quick
      (fun () ->
        for seed = 0 to 29 do
          let src = gen_src seed in
          let c use_mod return_jfs =
            count { Config.default with Config.use_mod; return_jfs } src
          in
          if not (c false true <= c true true) then
            Alcotest.failf "seed %d: MOD not monotone" seed;
          if not (c true false <= c true true) then
            Alcotest.failf "seed %d: return JFs not monotone" seed
        done);
    Alcotest.test_case "intraprocedural baseline <= interprocedural" `Quick
      (fun () ->
        for seed = 0 to 29 do
          let src = gen_src seed in
          let symtab = Sema.parse_and_analyze ~file:"<gen>" src in
          let intra = Intra.count symtab in
          let inter =
            Substitute.count
              (Driver.analyze
                 ~config:{ Config.default with Config.jf = Config.Polynomial }
                 symtab)
          in
          if intra > inter then
            Alcotest.failf "seed %d: intra %d > inter %d" seed intra inter
        done);
    Alcotest.test_case "paper-faithful returns <= symbolic returns" `Quick
      (fun () ->
        for seed = 0 to 29 do
          let src = gen_src seed in
          let c symbolic_returns =
            count
              { Config.default with
                Config.jf = Config.Polynomial; symbolic_returns }
              src
          in
          if c false > c true then
            Alcotest.failf "seed %d: symbolic returns lost constants" seed
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Semantic preservation of the transformations *)

let run_output symtab =
  let r = Interp.run ~fuel:500_000 symtab in
  (r.Interp.status, r.Interp.output)

let preservation_tests =
  [
    Alcotest.test_case "substitution preserves program output" `Slow
      (fun () ->
        for seed = 0 to 39 do
          let src = gen_src seed in
          let symtab = Sema.parse_and_analyze ~file:"<gen>" src in
          let t =
            Driver.analyze
              ~config:{ Config.default with Config.jf = Config.Polynomial }
              symtab
          in
          let sub = Substitute.apply t in
          let src' = Pretty.program_to_string sub.Substitute.program in
          let symtab' = Sema.parse_and_analyze ~file:"<gen'>" src' in
          let s1, o1 = run_output symtab in
          let s2, o2 = run_output symtab' in
          match s1 with
          | Interp.Completed | Interp.Stopped ->
              if o1 <> o2 then
                Alcotest.failf "seed %d: output changed\n%s\n---\n%s" seed src
                  src';
              if s1 <> s2 then Alcotest.failf "seed %d: status changed" seed
          | _ -> () (* faulting programs may fault mid-print; skip *)
        done);
    Alcotest.test_case "complete propagation preserves program output" `Slow
      (fun () ->
        for seed = 0 to 29 do
          let src = gen_src seed in
          let symtab = Sema.parse_and_analyze ~file:"<gen>" src in
          let s1, o1 = run_output symtab in
          match s1 with
          | Interp.Completed | Interp.Stopped ->
              let r = Complete.run src in
              let symtab' =
                Sema.parse_and_analyze ~file:"<c>" r.Complete.final_source
              in
              let s2, o2 = run_output symtab' in
              if o1 <> o2 then
                Alcotest.failf "seed %d: complete propagation changed output\n%s\n---\n%s"
                  seed src r.Complete.final_source;
              if s1 <> s2 then Alcotest.failf "seed %d: status changed" seed
          | _ -> ()
        done);
    Alcotest.test_case "pretty/parse round-trip on generated programs"
      `Quick (fun () ->
        for seed = 0 to 49 do
          let src = gen_src seed in
          let p1 = Parser.parse ~file:"<g>" src in
          let s1 = Pretty.program_to_string p1 in
          let s2 = Pretty.program_to_string (Parser.parse ~file:"<g>" s1) in
          if s1 <> s2 then Alcotest.failf "seed %d: round-trip unstable" seed
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Verifier has no false positives: on generated programs the pass
   sanitizer reports zero violations after lowering, SSA construction,
   and every source-to-source optimization pass. *)

module Verify = Ipcp_verify.Verify

let expect_clean ~seed ~stage = function
  | [] -> ()
  | v :: _ ->
      QCheck.Test.fail_reportf "seed %d: %s: %s" seed stage
        (Verify.violation_to_string v)

let verifier_clean_prop seed =
  let src = gen_src seed in
  let symtab = Sema.parse_and_analyze ~file:"<gen>" src in
  let cfgs = Ipcp_ir.Lower.lower_program symtab in
  Names.SM.iter
    (fun _ cfg ->
      expect_clean ~seed ~stage:"lowering" (Verify.check_lowered ~symtab cfg);
      expect_clean ~seed ~stage:"SSA"
        (Verify.check_ssa ~symtab (Ipcp_ir.Ssa.convert cfg)))
    cfgs;
  (* Driver.analyze and Substitute.apply re-run the verifier internally
     (verify_ir is on in Config.default and raises on violations); going
     through check_source here also validates the printed output. *)
  let t = Driver.analyze symtab in
  let sub = Substitute.apply t in
  expect_clean ~seed ~stage:"substitution"
    (Verify.check_source ~file:"<sub>"
       (Pretty.program_to_string sub.Substitute.program));
  let r = Complete.run src in
  expect_clean ~seed ~stage:"complete propagation"
    (Verify.check_source ~file:"<complete>" r.Complete.final_source);
  true

let verifier_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"verifier clean after lowering, SSA and every opt pass"
         ~count:25
         QCheck.(make Gen.(int_bound 999))
         verifier_clean_prop);
  ]

let suites =
  [
    ("gen-validity", generator_tests);
    ("prop-soundness", soundness_tests);
    ("prop-monotonicity", monotonicity_tests);
    ("prop-preservation", preservation_tests);
    ("prop-verifier", verifier_tests);
  ]
