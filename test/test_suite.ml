(* Suite tests: the twelve benchmark programs must be well-formed, runnable,
   and must reproduce the SHAPE of the paper's Tables 2 and 3 — the
   orderings between techniques and the signature effects per program.
   Exact measured counts are also pinned (as goldens of THIS implementation)
   so that behavioural drift is caught. *)

open Ipcp_frontend
module Config = Ipcp_core.Config
module Driver = Ipcp_core.Driver
module Substitute = Ipcp_opt.Substitute
module Intra = Ipcp_opt.Intra
module Complete = Ipcp_opt.Complete
module Programs = Ipcp_suite.Programs
module Interp = Ipcp_interp.Interp

let cfg jf ~retjf ~md =
  { Config.default with Config.jf; return_jfs = retjf; use_mod = md }

let count config (p : Programs.program) =
  let _, t =
    Driver.analyze_source ~config ~file:p.Programs.name p.Programs.source
  in
  Substitute.count t

type measured = {
  poly_r : int;
  pass_r : int;
  intra_r : int;
  lit_r : int;
  poly_nr : int;
  no_mod : int;
  complete : int;
  intra_only : int;
}

let measure (p : Programs.program) : measured =
  let symtab =
    Sema.parse_and_analyze ~file:p.Programs.name p.Programs.source
  in
  {
    poly_r = count (cfg Config.Polynomial ~retjf:true ~md:true) p;
    pass_r = count (cfg Config.Passthrough ~retjf:true ~md:true) p;
    intra_r = count (cfg Config.Intraconst ~retjf:true ~md:true) p;
    lit_r = count (cfg Config.Literal ~retjf:true ~md:true) p;
    poly_nr = count (cfg Config.Polynomial ~retjf:false ~md:true) p;
    no_mod = count (cfg Config.Polynomial ~retjf:true ~md:false) p;
    complete =
      (Complete.run
         ~config:(cfg Config.Polynomial ~retjf:true ~md:true)
         p.Programs.source)
        .Complete.count;
    intra_only = Intra.count symtab;
  }

(* goldens: measured values of this implementation, pinned for regression *)
let goldens =
  [
    ("adm", (52, 52, 52, 52, 52, 8, 52, 48));
    ("doduc", (114, 114, 114, 113, 112, 112, 114, 1));
    ("fpppp", (38, 38, 32, 26, 34, 11, 38, 15));
    ("linpackd", (28, 28, 28, 11, 28, 10, 28, 11));
    ("matrix300", (39, 39, 23, 15, 39, 17, 39, 15));
    ("mdg", (33, 33, 32, 23, 32, 27, 33, 20));
    ("ocean", (56, 56, 56, 24, 24, 37, 70, 17));
    ("qcd", (36, 36, 36, 36, 36, 34, 36, 35));
    ("simple", (68, 68, 64, 57, 68, 0, 68, 57));
    ("snasa7", (98, 98, 98, 62, 98, 97, 98, 62));
    ("spec77", (41, 41, 41, 37, 41, 21, 45, 18));
    ("trfd", (14, 14, 14, 14, 14, 10, 14, 13));
  ]

let validity_tests =
  [
    Alcotest.test_case "all twelve programs parse and check" `Quick (fun () ->
        List.iter
          (fun (p : Programs.program) ->
            match
              Diag.guard_s (fun () ->
                  Sema.parse_and_analyze ~file:p.Programs.name
                    p.Programs.source)
            with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "%s: %s" p.Programs.name e)
          Programs.all);
    Alcotest.test_case "all twelve programs run to completion" `Quick
      (fun () ->
        List.iter
          (fun (p : Programs.program) ->
            let symtab =
              Sema.parse_and_analyze ~file:p.Programs.name p.Programs.source
            in
            let r = Interp.run ~fuel:2_000_000 symtab in
            match r.Interp.status with
            | Interp.Completed | Interp.Stopped -> ()
            | s ->
                Alcotest.failf "%s: %a" p.Programs.name Interp.pp_status s)
          Programs.all);
    Alcotest.test_case "optimised suite programs print the same output"
      `Quick (fun () ->
        List.iter
          (fun (p : Programs.program) ->
            let symtab =
              Sema.parse_and_analyze ~file:p.Programs.name p.Programs.source
            in
            let before = (Interp.run ~fuel:2_000_000 symtab).Interp.output in
            let r = Complete.run p.Programs.source in
            let symtab' =
              Sema.parse_and_analyze ~file:p.Programs.name
                r.Complete.final_source
            in
            let after = (Interp.run ~fuel:2_000_000 symtab').Interp.output in
            if before <> after then
              Alcotest.failf "%s: complete propagation changed the output"
                p.Programs.name)
          Programs.all);
  ]

let shape_tests =
  [
    Alcotest.test_case "Table 2 orderings hold on every program" `Quick
      (fun () ->
        List.iter
          (fun (p : Programs.program) ->
            let m = measure p in
            if not (m.lit_r <= m.intra_r && m.intra_r <= m.pass_r) then
              Alcotest.failf "%s: literal/intra/pass ordering broken"
                p.Programs.name;
            if m.pass_r <> m.poly_r then
              Alcotest.failf
                "%s: pass-through and polynomial should agree (paper: \
                 'found the same set of constants')"
                p.Programs.name;
            if m.poly_nr > m.poly_r then
              Alcotest.failf "%s: return JFs lost constants" p.Programs.name)
          Programs.all);
    Alcotest.test_case "signature effects per program" `Quick (fun () ->
        let m name = measure (Option.get (Programs.by_name name)) in
        (* adm: flat row, big no-MOD collapse, small interprocedural margin *)
        let adm = m "adm" in
        Alcotest.(check bool) "adm flat" true (adm.lit_r = adm.poly_r);
        Alcotest.(check bool) "adm no-MOD collapse" true
          (adm.no_mod * 3 < adm.poly_r);
        (* doduc: intraprocedural-only collapses, no-MOD barely hurts *)
        let doduc = m "doduc" in
        Alcotest.(check bool) "doduc intra-only tiny" true
          (doduc.intra_only * 10 < doduc.poly_r);
        Alcotest.(check bool) "doduc no-MOD barely hurts" true
          (doduc.no_mod * 10 >= doduc.poly_r * 9);
        (* ocean: return JFs at least double the count; complete adds more *)
        let ocean = m "ocean" in
        Alcotest.(check bool) "ocean return JFs >= 2x" true
          (ocean.poly_r >= 2 * ocean.poly_nr);
        Alcotest.(check bool) "ocean complete gains" true
          (ocean.complete > ocean.poly_r);
        (* spec77: the only other complete-propagation gain *)
        let spec77 = m "spec77" in
        Alcotest.(check bool) "spec77 complete gains" true
          (spec77.complete > spec77.poly_r);
        (* simple: near-total no-MOD collapse *)
        let simple = m "simple" in
        Alcotest.(check bool) "simple no-MOD ~ 0" true (simple.no_mod <= 2);
        (* linpackd/snasa7: the literal technique loses heavily *)
        let lp = m "linpackd" and sn = m "snasa7" in
        Alcotest.(check bool) "linpackd literal gap" true
          (lp.lit_r * 2 < lp.poly_r);
        Alcotest.(check bool) "snasa7 literal gap" true
          (sn.lit_r * 3 <= sn.poly_r * 2);
        (* qcd/trfd: flat rows, intra-only nearly equal *)
        let qcd = m "qcd" and trfd = m "trfd" in
        Alcotest.(check bool) "qcd flat" true (qcd.lit_r = qcd.poly_r);
        Alcotest.(check bool) "qcd intra-only close" true
          (qcd.poly_r - qcd.intra_only <= 2);
        Alcotest.(check bool) "trfd flat" true (trfd.lit_r = trfd.poly_r);
        (* matrix300: chains cost the intraprocedural JF *)
        let mx = m "matrix300" in
        Alcotest.(check bool) "matrix300 chain gap" true
          (mx.intra_r < mx.pass_r);
        (* mdg and fpppp: return JFs gain a little *)
        let mdg = m "mdg" and fp = m "fpppp" in
        Alcotest.(check bool) "mdg return gain" true (mdg.poly_r > mdg.poly_nr);
        Alcotest.(check bool) "fpppp return gain" true (fp.poly_r > fp.poly_nr);
        Alcotest.(check bool) "fpppp literal < intra < pass" true
          (fp.lit_r < fp.intra_r && fp.intra_r < fp.pass_r));
    Alcotest.test_case "golden counts pinned" `Quick (fun () ->
        List.iter
          (fun (p : Programs.program) ->
            let m = measure p in
            let g_poly_r, g_pass_r, g_intra_r, g_lit_r, g_poly_nr, g_no_mod,
                g_complete, g_intra_only =
              List.assoc p.Programs.name goldens
            in
            let check what got expect =
              if got <> expect then
                Alcotest.failf "%s %s: measured %d, golden %d"
                  p.Programs.name what got expect
            in
            check "poly+R" m.poly_r g_poly_r;
            check "pass+R" m.pass_r g_pass_r;
            check "intra+R" m.intra_r g_intra_r;
            check "literal+R" m.lit_r g_lit_r;
            check "poly(no R)" m.poly_nr g_poly_nr;
            check "no-MOD" m.no_mod g_no_mod;
            check "complete" m.complete g_complete;
            check "intra-only" m.intra_only g_intra_only)
          Programs.all);
  ]

let suites = [ ("suite-validity", validity_tests); ("suite-shape", shape_tests) ]
