(* Tests of the stable [Ipcp_api.Ipcp] facade: the documented result
   surface, error reporting, statistics determinism, and agreement with
   the internals it wraps. *)

module Ipcp = Ipcp_api.Ipcp
module Config = Ipcp.Config
module Driver = Ipcp_core.Driver
module Lint = Ipcp_analysis.Lint
module Obs = Ipcp_obs.Obs

let config = { Config.default with Config.jobs = 1 }

let src =
  {|
PROGRAM main
  INTEGER x
  x = 2 + 3
  CALL work(10, x)
  CALL work(10, x)
END

SUBROUTINE work(a, b)
  INTEGER a, b
  PRINT *, a + b
END
|}

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected facade error: %s" e

let analyze ?(config = config) ?cache s =
  ok (Ipcp.analyze ~config ?cache (Ipcp.Source.of_string s))

let surface_tests =
  [
    Alcotest.test_case "result surface of a known program" `Quick (fun () ->
        let r = analyze src in
        Alcotest.(check (list string))
          "procedures in declaration order" [ "main"; "work" ]
          (Ipcp.Result.procedures r);
        Alcotest.(check (list (pair string int)))
          "CONSTANTS(work)"
          [ ("a", 10); ("b", 5) ]
          (Ipcp.Result.constants r "work");
        Alcotest.(check bool)
          "total covers both procedures" true
          (Ipcp.Result.total_constants r >= 2);
        let sub = Ipcp.Result.substitution r in
        Alcotest.(check bool) "substitutions found" true (sub.Ipcp.Result.total > 0);
        let census = Ipcp.Result.census r in
        Alcotest.(check bool)
          "census counts some jump functions" true
          (census.Ipcp.Result.n_const + census.Ipcp.Result.n_passthrough > 0);
        let st = Ipcp.Result.solver_stats r in
        Alcotest.(check bool) "solver did work" true (st.Ipcp.Result.pops > 0);
        Alcotest.(check bool)
          "cache disabled by default" false
          (Ipcp.Result.cache r).Ipcp.Cache.r_enabled);
    Alcotest.test_case "api version is stable" `Quick (fun () ->
        (* v2: the session surface is primary; the v1 one-shot wrappers
           (exercised throughout this file) keep their signatures *)
        Alcotest.(check int) "version 2" 2 Ipcp.api_version);
    Alcotest.test_case "source accessors" `Quick (fun () ->
        let s = Ipcp.Source.of_string ~file:"a.mf" "PROGRAM p\nEND\n" in
        Alcotest.(check string) "file" "a.mf" (Ipcp.Source.file s);
        Alcotest.(check bool)
          "missing file is an Error" true
          (Result.is_error (Ipcp.Source.of_file "/nonexistent/x.mf")));
    Alcotest.test_case "diagnostics surface as Error, not exceptions" `Quick
      (fun () ->
        Alcotest.(check bool)
          "syntax error" true
          (Result.is_error
             (Ipcp.analyze ~config (Ipcp.Source.of_string "PROGRAM\n")));
        Alcotest.(check bool)
          "semantic error" true
          (Result.is_error
             (Ipcp.analyze ~config
                (Ipcp.Source.of_string
                   "PROGRAM main\n  CALL nope(1)\nEND\n"))));
    Alcotest.test_case "facade agrees with the wrapped internals" `Quick
      (fun () ->
        let r = analyze src in
        let d = Ipcp.Result.driver r in
        Alcotest.(check int)
          "total_constants" (Driver.total_constants d)
          (Ipcp.Result.total_constants r);
        Alcotest.(check int)
          "lints" (List.length (Lint.run d))
          (List.length (Ipcp.Result.lints r)));
    Alcotest.test_case "complete wrapper" `Quick (fun () ->
        let c = ok (Ipcp.complete ~config (Ipcp.Source.of_string src)) in
        Alcotest.(check bool) "rounds ran" true (c.Ipcp.rounds >= 1);
        Alcotest.(check bool)
          "final source parses" true
          (Result.is_ok
             (Ipcp.analyze ~config (Ipcp.Source.of_string c.Ipcp.final_source))));
  ]

let stats_tests =
  [
    Alcotest.test_case "stats are deterministic and filtered" `Quick (fun () ->
        Obs.set_enabled true;
        Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
        let s1 = Ipcp.Result.stats (analyze src) in
        let s2 = Ipcp.Result.stats (analyze src) in
        Alcotest.(check bool) "two runs agree" true (s1 = s2);
        Alcotest.(check bool) "counters present" true (s1 <> []);
        List.iter
          (fun (k, _) ->
            Alcotest.(check bool)
              (Fmt.str "%s is deterministic" k)
              false
              (String.starts_with ~prefix:"time_ns/" k
              || String.starts_with ~prefix:"gc." k
              || String.starts_with ~prefix:"incr." k))
          s1);
    Alcotest.test_case "stats empty while telemetry is off" `Quick (fun () ->
        Alcotest.(check (list (pair string int)))
          "no counters" []
          (Ipcp.Result.stats (analyze src)));
    Alcotest.test_case "warm replay reports the producing run's stats" `Quick
      (fun () ->
        let dir =
          let f = Filename.temp_file "ipcp-test-api" "" in
          Sys.remove f;
          Sys.mkdir f 0o755;
          f
        in
        Obs.set_enabled true;
        Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
        let cache = Ipcp.Cache.Dir dir in
        let cold = analyze ~cache src in
        let warm = analyze ~cache src in
        Alcotest.(check bool)
          "warm fixpoint replayed" true
          (Ipcp.Result.cache warm).Ipcp.Cache.r_fixpoint_reused;
        Alcotest.(check bool)
          "byte-identical statistics" true
          (Ipcp.Result.stats cold = Ipcp.Result.stats warm
          && Ipcp.Result.convergence cold = Ipcp.Result.convergence warm));
  ]

let suites = [ ("api-surface", surface_tests); ("api-stats", stats_tests) ]
