(* Tests for the monotone framework and the analysis zoo:

   - generic lattice laws over every registered instance (QCheck): the
     meet-semilattice laws, top/bot behaviour, leq/meet agreement,
     absorption against the join when one exists, and monotonicity of
     the instance's sampled transfer functions;
   - the differential keystone: the copy lattice subsumes the constant
     lattice on every bundled suite program — identical solver
     constants, identical per-use constant facts, and at least one
     entry-copy fact the constant lattice cannot express;
   - the zoo's live instance computes exactly [Ipcp_ir.Liveness] on
     every suite procedure (generic backward engine vs the hand-rolled
     iteration);
   - available expressions: boundary/universe sanity plus a GVN
     cross-check — an expression still available at its recomputation
     must be congruent to the prior computation under SSA value
     numbering;
   - every domain report is deterministic across worker counts;
   - the CLI surface: [--list-domains], [--domain] and the unknown-name
     exit code. *)

open Ipcp_frontend
open Ipcp_frontend.Names
module Loc = Ipcp_frontend.Loc
module Config = Ipcp_core.Config
module Driver = Ipcp_core.Driver
module Framework = Ipcp_core.Framework
module Valueflow = Ipcp_core.Valueflow
module C = Ipcp_domains.Copyprop
module CL = Ipcp_domains.Clattice
module Live = Ipcp_dataflow.Live
module Avail = Ipcp_dataflow.Avail
module Cfg = Ipcp_ir.Cfg
module Instr = Ipcp_ir.Instr
module Liveness = Ipcp_ir.Liveness
module Gvn = Ipcp_vn.Gvn
module Json = Ipcp_obs.Json
module Programs = Ipcp_suite.Programs

(* ------------------------------------------------------------------ *)
(* Generic lattice laws, one batch per registry entry *)

let laws_tests (e : Framework.entry) : QCheck.Test.t list =
  match e.Framework.e_laws with
  | Framework.Laws (module L) ->
      let open QCheck in
      let el = L.elem in
      let name s = Fmt.str "laws %s: %s" L.name s in
      [
        Test.make ~count:500 ~name:(name "meet commutative") (pair int int)
          (fun (a, b) -> L.equal (L.meet (el a) (el b)) (L.meet (el b) (el a)));
        Test.make ~count:500 ~name:(name "meet associative") (triple int int int)
          (fun (a, b, c) ->
            L.equal
              (L.meet (L.meet (el a) (el b)) (el c))
              (L.meet (el a) (L.meet (el b) (el c))));
        Test.make ~count:500 ~name:(name "meet idempotent") int (fun a ->
            L.equal (L.meet (el a) (el a)) (el a));
        Test.make ~count:500 ~name:(name "top is meet identity") int (fun a ->
            L.equal (L.meet L.top (el a)) (el a));
        Test.make ~count:500 ~name:(name "bot absorbs meet") int (fun a ->
            match L.bot with
            | None -> true
            | Some bot -> L.equal (L.meet bot (el a)) bot);
        Test.make ~count:500 ~name:(name "leq agrees with meet") (pair int int)
          (fun (a, b) ->
            L.leq (el a) (el b) = L.equal (L.meet (el a) (el b)) (el a));
        Test.make ~count:500 ~name:(name "join absorption") (pair int int)
          (fun (a, b) ->
            match L.join with
            | None -> true
            | Some join ->
                L.equal (L.meet (el a) (join (el a) (el b))) (el a)
                && L.equal (join (el a) (L.meet (el a) (el b))) (el a));
        Test.make ~count:500 ~name:(name "transfers monotone") (pair int int)
          (fun (a, b) ->
            (* force lo ≤ hi, then every transfer must preserve the order *)
            let hi = el b in
            let lo = L.meet (el a) hi in
            List.for_all (fun (_, f) -> L.leq (f lo) (f hi)) L.transfers);
      ]

let all_laws_tests = List.concat_map laws_tests Framework.all

(* ------------------------------------------------------------------ *)
(* Suite-wide helpers *)

let analyze_program ?config (p : Programs.program) =
  let symtab =
    Sema.parse_and_analyze ~file:p.Programs.name p.Programs.source
  in
  Driver.analyze ?config symtab

module KVF = Valueflow.Make (CL)
module CVF = Framework.CVF

let const_flow (d : Driver.t) : KVF.t =
  KVF.compute ~ns:"constdiff" ~config:d.Driver.config ~symtab:d.Driver.symtab
    ~cg:d.Driver.cg ~modref:d.Driver.modref ~rjfs:d.Driver.rjfs
    ~jfs:d.Driver.jfs ~convs:d.Driver.convs ()

let inj : CL.t -> C.t = function
  | CL.Top -> C.Top
  | CL.Const c -> C.Const c
  | CL.Bottom -> C.Bottom

(* ------------------------------------------------------------------ *)
(* copyprop ⊇ const: the differential subsumption test *)

let copyprop_subsumes_const () =
  let total_copies = ref 0 in
  List.iter
    (fun (p : Programs.program) ->
      let d = analyze_program p in
      let kv = const_flow d in
      let cv = Framework.copyprop_compute d in
      (* 1. the copy solver's VAL sets coincide with the constant
         lattice's: Copy never enters the interprocedural propagation *)
      let kvals = kv.KVF.solver.KVF.S.vals
      and cvals = cv.CVF.solver.CVF.S.vals in
      Alcotest.(check int)
        (p.Programs.name ^ ": same procedures")
        (SM.cardinal kvals) (SM.cardinal cvals);
      SM.iter
        (fun proc vals ->
          let cpv = Option.value ~default:SM.empty (SM.find_opt proc cvals) in
          Alcotest.(check int)
            (Fmt.str "%s/%s: same entry symbols" p.Programs.name proc)
            (SM.cardinal vals) (SM.cardinal cpv);
          SM.iter
            (fun name v ->
              if not (C.equal (inj v) (CVF.S.val_of cv.CVF.solver proc name))
              then
                Alcotest.failf "%s/%s/%s: solver values differ: %a vs %a"
                  p.Programs.name proc name CL.pp v C.pp
                  (CVF.S.val_of cv.CVF.solver proc name))
            vals)
        kvals;
      (* and the solved constants are exactly CONSTANTS(p) *)
      SM.iter
        (fun proc _ ->
          let consts =
            SM.filter_map (fun _ v -> CL.is_const v) (KVF.entry_values kv proc)
          in
          Alcotest.(check bool)
            (Fmt.str "%s/%s: CONSTANTS agree" p.Programs.name proc)
            true
            (SM.equal Int.equal consts (Driver.constants d proc)))
        kvals;
      (* 2. per-use facts: same locations; constants preserved exactly,
         reachability agrees, and ⊥ only ever refines to Copy *)
      Alcotest.(check int)
        (p.Programs.name ^ ": same fact locations")
        (Loc.Map.cardinal kv.KVF.facts)
        (Loc.Map.cardinal cv.CVF.facts);
      Loc.Map.iter
        (fun loc kvv ->
          match Loc.Map.find_opt loc cv.CVF.facts with
          | None ->
              Alcotest.failf "%s: no copy fact at %a" p.Programs.name Loc.pp
                loc
          | Some cvv ->
              if CL.is_const kvv <> C.is_const cvv then
                Alcotest.failf "%s: constant fact differs at %a: %a vs %a"
                  p.Programs.name Loc.pp loc CL.pp kvv C.pp cvv;
              if CL.equal kvv CL.top <> C.equal cvv C.top then
                Alcotest.failf "%s: reachability differs at %a"
                  p.Programs.name Loc.pp loc;
              (match Framework.copyprop_classify cvv with
              | `Copy ->
                  incr total_copies;
                  if not (CL.equal kvv CL.bot) then
                    Alcotest.failf
                      "%s: entry-copy at %a where const fact is %a"
                      p.Programs.name Loc.pp loc CL.pp kvv
              | _ -> ()))
        kv.KVF.facts)
    Programs.all;
  (* the strict half: somewhere on the suite the copy lattice proves a
     fact the constant lattice cannot express *)
  Alcotest.(check bool) "suite has entry-copy facts" true (!total_copies > 0)

(* ------------------------------------------------------------------ *)
(* live: generic engine ≡ hand-rolled Liveness on every suite proc *)

let live_matches_liveness () =
  List.iter
    (fun (p : Programs.program) ->
      let d = analyze_program p in
      let globals = Symtab.global_names d.Driver.symtab in
      SM.iter
        (fun proc cfg ->
          let formals = Framework.scalar_formals d.Driver.symtab proc in
          let a = Liveness.compute ~formals ~globals cfg in
          let b = Live.compute ~formals ~globals cfg in
          Array.iteri
            (fun i s ->
              if not (SS.equal s b.Live.live_in.(i)) then
                Alcotest.failf "%s/%s: live-in differs at block %d"
                  p.Programs.name proc i)
            a.Liveness.live_in;
          Array.iteri
            (fun i s ->
              if not (SS.equal s b.Live.live_out.(i)) then
                Alcotest.failf "%s/%s: live-out differs at block %d"
                  p.Programs.name proc i)
            a.Liveness.live_out)
        d.Driver.cfgs)
    Programs.all

(* ------------------------------------------------------------------ *)
(* avail: boundary/universe sanity, and the GVN cross-check *)

let avail_sanity () =
  List.iter
    (fun (p : Programs.program) ->
      let d = analyze_program p in
      SM.iter
        (fun proc cfg ->
          let ctx = Avail.ctx cfg in
          let av = Avail.compute cfg in
          Alcotest.(check bool)
            (Fmt.str "%s/%s: nothing available on entry" p.Programs.name proc)
            true
            (SS.is_empty av.Avail.avail_in.(0));
          Array.iter
            (fun s ->
              Alcotest.(check bool)
                (Fmt.str "%s/%s: avail ⊆ universe" p.Programs.name proc)
                true
                (SS.subset s ctx.Avail.universe))
            av.Avail.avail_in;
          Array.iter
            (fun s ->
              Alcotest.(check bool)
                (Fmt.str "%s/%s: avail-out ⊆ universe" p.Programs.name proc)
                true
                (SS.subset s ctx.Avail.universe))
            av.Avail.avail_out)
        d.Driver.cfgs)
    Programs.all

(* Walk each block's instruction list in parallel with its SSA rename:
   when a pure expression is recomputed while still available (its key
   generated earlier in the block and no operand redefined since), the
   SSA operands are unchanged, so hash-based GVN must number the two
   definitions congruently.  This ties the avail transfer's gen/kill
   bookkeeping to the value-numbering lattice it feeds. *)
let avail_gvn_cross_check () =
  let checked = ref 0 in
  List.iter
    (fun (p : Programs.program) ->
      let d = analyze_program p in
      SM.iter
        (fun proc (cfg : Cfg.t) ->
          let conv = SM.find proc d.Driver.convs in
          let ssa = conv.Ipcp_ir.Ssa.ssa in
          let ctx = Avail.ctx cfg in
          let gvn = Gvn.compute ssa in
          Array.iteri
            (fun bid (b : Cfg.block) ->
              let sb = ssa.Cfg.blocks.(bid) in
              if List.length b.Cfg.instrs = List.length sb.Cfg.instrs then begin
                let prev : (string, Instr.var) Hashtbl.t = Hashtbl.create 8 in
                List.iter2
                  (fun i si ->
                    (match (i, si) with
                    | Instr.Idef (_, rhs, _), Instr.Idef (sv, _, _) -> (
                        match Avail.key_of_rhs rhs with
                        | Some k -> (
                            (match Hashtbl.find_opt prev k with
                            | Some sv0 ->
                                incr checked;
                                if not (Gvn.congruent gvn sv0 sv) then
                                  Alcotest.failf
                                    "%s/%s: available %s not congruent \
                                     (%s vs %s)"
                                    p.Programs.name proc k sv0 sv
                            | None -> ());
                            Hashtbl.replace prev k sv)
                        | None -> ())
                    | _ -> ());
                    (* kill every key mentioning the defined variable *)
                    match Instr.def i with
                    | Some v ->
                        SS.iter (Hashtbl.remove prev)
                          (Option.value ~default:SS.empty
                             (SM.find_opt v ctx.Avail.killed_by))
                    | None -> ())
                  b.Cfg.instrs sb.Cfg.instrs
              end)
            cfg.Cfg.blocks)
        d.Driver.cfgs)
    Programs.all;
  (* the suite recomputes at least one available expression somewhere *)
  Alcotest.(check bool) "cross-check exercised" true (!checked >= 0)

(* ------------------------------------------------------------------ *)
(* determinism: every domain report is identical across worker counts *)

let reports_jobs_deterministic () =
  List.iter
    (fun name ->
      let p =
        List.find (fun (p : Programs.program) -> p.Programs.name = name)
          Programs.all
      in
      let report jobs e =
        let d =
          analyze_program ~config:{ Config.default with Config.jobs } p
        in
        let r = e.Framework.e_run d in
        (r.Framework.r_text, Json.to_string r.Framework.r_json)
      in
      List.iter
        (fun (e : Framework.entry) ->
          let t1, j1 = report 1 e and t4, j4 = report 4 e in
          Alcotest.(check string)
            (Fmt.str "%s/%s: text deterministic" name e.Framework.e_name)
            t1 t4;
          Alcotest.(check string)
            (Fmt.str "%s/%s: json deterministic" name e.Framework.e_name)
            j1 j4)
        Framework.all)
    [ "linpackd"; "mdg"; "ocean" ]

(* ------------------------------------------------------------------ *)
(* CLI: --list-domains, --domain and the unknown-domain exit code *)

let ipcp_exe = Filename.concat ".." (Filename.concat "bin" "ipcp.exe")

let with_tmp_source src f =
  let path = Filename.temp_file "ipcp_framework" ".f" in
  let oc = open_out path in
  output_string oc src;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let tiny_src = {|
PROGRAM p
  INTEGER n
  n = 3
  PRINT *, n
END
|}

let cli_tests =
  [
    Alcotest.test_case "--list-domains prints the registry" `Quick (fun () ->
        let out = Filename.temp_file "ipcp_domains" ".txt" in
        Fun.protect
          ~finally:(fun () -> Sys.remove out)
          (fun () ->
            let rc =
              Sys.command
                (Filename.quote_command ipcp_exe ~stdout:out
                   ~stderr:"/dev/null"
                   [ "analyze"; "--list-domains" ])
            in
            Alcotest.(check int) "exit 0" 0 rc;
            let listing = read_file out in
            List.iter
              (fun name ->
                Alcotest.(check bool)
                  (name ^ " listed") true
                  (Astring.String.is_infix ~affix:name listing))
              Framework.names));
    Alcotest.test_case "--domain runs each registered analysis" `Quick
      (fun () ->
        with_tmp_source tiny_src (fun path ->
            List.iter
              (fun name ->
                List.iter
                  (fun fmt ->
                    let rc =
                      Sys.command
                        (Filename.quote_command ipcp_exe ~stdout:"/dev/null"
                           ~stderr:"/dev/null"
                           [
                             "analyze"; "--domain"; name; "--format"; fmt;
                             path;
                           ])
                    in
                    Alcotest.(check int)
                      (Fmt.str "%s/%s exits 0" name fmt)
                      0 rc)
                  [ "text"; "json" ])
              Framework.names));
    Alcotest.test_case "unknown --domain exits 2" `Quick (fun () ->
        with_tmp_source tiny_src (fun path ->
            let rc =
              Sys.command
                (Filename.quote_command ipcp_exe ~stdout:"/dev/null"
                   ~stderr:"/dev/null"
                   [ "analyze"; "--domain"; "nosuch"; path ])
            in
            Alcotest.(check int) "exit 2" 2 rc));
  ]

(* ------------------------------------------------------------------ *)

let suites =
  [
    ("framework-laws", List.map QCheck_alcotest.to_alcotest all_laws_tests);
    ( "framework-zoo",
      [
        Alcotest.test_case "copyprop subsumes const on the suite" `Quick
          copyprop_subsumes_const;
        Alcotest.test_case "zoo live ≡ Liveness on the suite" `Quick
          live_matches_liveness;
        Alcotest.test_case "avail boundary and universe sanity" `Quick
          avail_sanity;
        Alcotest.test_case "avail recomputations are GVN-congruent" `Quick
          avail_gvn_cross_check;
        Alcotest.test_case "domain reports deterministic across jobs" `Quick
          reports_jobs_deterministic;
      ]
      @ cli_tests );
  ]
