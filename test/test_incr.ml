(* Tests of the incremental reanalysis engine: cache population and
   replay, the two-tier invalidation (content vs exact-with-locations),
   the caller-closure dirty set, cache-envelope resilience, and the
   warm-equals-cold property under random single-procedure edits. *)

open Ipcp_frontend
module Config = Ipcp_core.Config
module Incr = Ipcp_incr.Incr
module Store = Ipcp_incr.Store
module Obs = Ipcp_obs.Obs
module Metrics = Ipcp_obs.Metrics
module Ipcp = Ipcp_api.Ipcp

(* a fresh, empty cache directory per test *)
let fresh_dir () =
  let f = Filename.temp_file "ipcp-test-incr" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let config = { Config.default with Config.jobs = 1 }

let analyze ?(config = config) ?cache src =
  let symtab = Sema.parse_and_analyze ~file:"<test>" src in
  Ipcp.analyze_symtab ~config ?cache ~key:"<test>" symtab

(* everything a consumer can observe: constants per procedure, the
   substituted source, and the substitution count *)
let observable (r : Ipcp.Result.t) =
  ( List.map (fun p -> (p, Ipcp.Result.constants r p)) (Ipcp.Result.procedures r),
    Pretty.program_to_string (Ipcp.Result.substitution r).Ipcp.Result.program,
    (Ipcp.Result.substitution r).Ipcp.Result.total )

let check_warm_equals_cold ?config name ~cache src =
  let warm = analyze ?config ~cache src in
  let cold = analyze ?config src in
  Alcotest.(check bool)
    (name ^ ": warm result equals a from-scratch analysis")
    true
    (observable warm = observable cold);
  warm

let report (r : Ipcp.Result.t) = Ipcp.Result.cache r

(* run [f] with telemetry on so the incr.* counters are recorded *)
let with_obs f =
  Obs.set_enabled true;
  Metrics.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

(* ------------------------------------------------------------------ *)
(* Sources.  [chain_src] has an isolated procedure so partial
   invalidation is observable: main -> mid -> leaf, main -> iso. *)

let chain_src ?(leaf_c = 7) ?(iso_c = 5) () =
  Fmt.str
    {|
PROGRAM main
  INTEGER x
  x = 3
  CALL mid(x)
  CALL iso(x)
END

SUBROUTINE mid(a)
  INTEGER a
  CALL leaf(a + 1)
END

SUBROUTINE leaf(b)
  INTEGER b, c
  c = %d
  PRINT *, b + c
END

SUBROUTINE iso(d)
  INTEGER d, e
  e = %d
  PRINT *, d * e
END
|}
    leaf_c iso_c

let recursive_src ?(dec = 1) () =
  Fmt.str
    {|
PROGRAM main
  INTEGER x
  x = even(10)
  PRINT *, x
END
INTEGER FUNCTION even(n)
  INTEGER n, m
  IF (n .EQ. 0) THEN
    even = 1
  ELSE
    m = n - %d
    even = odd(m)
  ENDIF
END
INTEGER FUNCTION odd(n)
  INTEGER n, m
  IF (n .EQ. 0) THEN
    odd = 0
  ELSE
    m = n - 1
    odd = even(m)
  ENDIF
END
|}
    dec

(* ------------------------------------------------------------------ *)

let lifecycle_tests =
  [
    Alcotest.test_case "cold run populates, identical rerun fully replays"
      `Quick
      (fun () ->
        let dir = fresh_dir () in
        let cache = Ipcp.Cache.Dir dir in
        let src = chain_src () in
        let r1 = analyze ~cache src in
        Alcotest.(check bool)
          "first run is cold" true
          ((report r1).Ipcp.Cache.r_cold <> None);
        Alcotest.(check int)
          "one cache entry written" 1
          (List.length (Ipcp.Cache.entries dir));
        let r2 = check_warm_equals_cold "identical rerun" ~cache src in
        let c = report r2 in
        Alcotest.(check bool) "second run is warm" true (c.Ipcp.Cache.r_cold = None);
        Alcotest.(check int) "nothing changed" 0 c.Ipcp.Cache.r_changed;
        Alcotest.(check int) "nothing dirty" 0 c.Ipcp.Cache.r_dirty;
        Alcotest.(check bool)
          "fixpoint replayed" true c.Ipcp.Cache.r_fixpoint_reused;
        Alcotest.(check int)
          "all IR replayed" c.Ipcp.Cache.r_procs c.Ipcp.Cache.r_ir_reused);
    Alcotest.test_case "warm replay at scale (generated 300-proc program)"
      `Quick
      (fun () ->
        (* the bench's incr:warm@1k row, shrunk to test size: a full
           replay of a scaled generated program must be byte-equal to
           the cold analysis and reuse every per-procedure artifact *)
        let src =
          Ipcp_gen.Generator.generate
            ~params:(Ipcp_gen.Generator.scaled ~n_procs:300 ())
            ()
        in
        let cache = Ipcp.Cache.Dir (fresh_dir ()) in
        let r1 = analyze ~cache src in
        Alcotest.(check bool)
          "first run is cold" true
          ((report r1).Ipcp.Cache.r_cold <> None);
        let r2 = check_warm_equals_cold "scaled rerun" ~cache src in
        let c = report r2 in
        Alcotest.(check bool) "warm" true (c.Ipcp.Cache.r_cold = None);
        Alcotest.(check int) "301 procedures" 301 c.Ipcp.Cache.r_procs;
        Alcotest.(check int) "nothing dirty" 0 c.Ipcp.Cache.r_dirty;
        Alcotest.(check bool)
          "fixpoint replayed" true c.Ipcp.Cache.r_fixpoint_reused;
        Alcotest.(check bool)
          "substitution replayed" true c.Ipcp.Cache.r_substitution_reused;
        Alcotest.(check int)
          "all IR replayed" c.Ipcp.Cache.r_procs c.Ipcp.Cache.r_ir_reused);
    Alcotest.test_case "comment shift rebuilds IR, keeps summaries" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let cache = Ipcp.Cache.Dir dir in
        ignore (analyze ~cache (chain_src ()));
        (* textually identical procedures, every line moved down by one *)
        let shifted = "! leading comment\n" ^ chain_src () in
        let r = check_warm_equals_cold "shifted" ~cache shifted in
        let c = report r in
        Alcotest.(check bool) "warm" true (c.Ipcp.Cache.r_cold = None);
        Alcotest.(check int) "no content change" 0 c.Ipcp.Cache.r_changed;
        Alcotest.(check int) "no IR reuse (locations moved)" 0 c.Ipcp.Cache.r_ir_reused;
        Alcotest.(check int)
          "all summaries reused" c.Ipcp.Cache.r_procs
          c.Ipcp.Cache.r_summary_reused;
        Alcotest.(check bool)
          "fixpoint replayed" true c.Ipcp.Cache.r_fixpoint_reused);
    Alcotest.test_case "lint locations are current after a shift" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let cache = Ipcp.Cache.Dir dir in
        ignore (analyze ~cache (chain_src ()));
        let shifted = "! leading comment\n" ^ chain_src () in
        let warm = analyze ~cache shifted in
        let cold = analyze shifted in
        Alcotest.(check bool)
          "warm findings equal cold findings (locations included)" true
          (Ipcp.Result.lints warm = Ipcp.Result.lints cold));
  ]

let invalidation_tests =
  [
    Alcotest.test_case "leaf edit dirties exactly the caller chain" `Quick
      (fun () ->
        with_obs @@ fun () ->
        let dir = fresh_dir () in
        let cache = Ipcp.Cache.Dir dir in
        ignore (analyze ~cache (chain_src ()));
        let warm = analyze ~cache (chain_src ~leaf_c:8 ()) in
        (* the facade resets the registry per call: read the warm run's
           counters before the comparison run below *)
        let rebuilt = Metrics.get "incr.summary.rebuilt" in
        let cold = analyze (chain_src ~leaf_c:8 ()) in
        Alcotest.(check bool)
          "warm result equals a from-scratch analysis" true
          (observable warm = observable cold);
        let c = report warm in
        Alcotest.(check int) "one procedure changed" 1 c.Ipcp.Cache.r_changed;
        (* leaf itself, mid, main — but not iso *)
        Alcotest.(check int) "dirty = leaf + its callers" 3 c.Ipcp.Cache.r_dirty;
        Alcotest.(check int)
          "iso's summaries survive" 1 c.Ipcp.Cache.r_summary_reused;
        Alcotest.(check int) "obs agrees: three rebuilt" 3 rebuilt);
    Alcotest.test_case "main edit dirties only main" `Quick (fun () ->
        let dir = fresh_dir () in
        let cache = Ipcp.Cache.Dir dir in
        ignore (analyze ~cache (chain_src ()));
        let edited =
          Astring.String.cuts ~sep:"x = 3" (chain_src ())
          |> String.concat "x = 4"
        in
        let r = check_warm_equals_cold "main edit" ~cache edited in
        let c = report r in
        Alcotest.(check int) "one changed" 1 c.Ipcp.Cache.r_changed;
        Alcotest.(check int) "only main dirty" 1 c.Ipcp.Cache.r_dirty;
        Alcotest.(check bool)
          "fixpoint not replayed (program content changed)" false
          c.Ipcp.Cache.r_fixpoint_reused);
    Alcotest.test_case "edit inside an SCC dirties the whole component"
      `Quick
      (fun () ->
        let dir = fresh_dir () in
        let cache = Ipcp.Cache.Dir dir in
        ignore (analyze ~cache (recursive_src ()));
        let r =
          check_warm_equals_cold "SCC edit" ~cache (recursive_src ~dec:2 ())
        in
        let c = report r in
        (* the edit is in [even]; [odd] calls it, and main calls [even]:
           the whole recursive component plus main is dirty *)
        Alcotest.(check int) "one changed" 1 c.Ipcp.Cache.r_changed;
        Alcotest.(check int) "component + caller dirty" 3 c.Ipcp.Cache.r_dirty);
    Alcotest.test_case "adding and removing a procedure" `Quick (fun () ->
        let dir = fresh_dir () in
        let cache = Ipcp.Cache.Dir dir in
        let v1 = chain_src () in
        let v2 =
          chain_src ()
          ^ {|
SUBROUTINE extra(z)
  INTEGER z
  PRINT *, z + 100
END
|}
        in
        ignore (analyze ~cache v1);
        let r2 = check_warm_equals_cold "procedure added" ~cache v2 in
        Alcotest.(check int)
          "only the new procedure changed" 1
          (report r2).Ipcp.Cache.r_changed;
        let r3 = check_warm_equals_cold "procedure removed" ~cache v1 in
        let c3 = report r3 in
        (* the snapshot now describes v2, so the program hash differs and
           the fixpoint must be re-solved — but every surviving procedure
           is unchanged, so all summaries replay *)
        Alcotest.(check int) "no surviving procedure changed" 0
          c3.Ipcp.Cache.r_changed;
        Alcotest.(check bool)
          "fixpoint re-solved after removal" false
          c3.Ipcp.Cache.r_fixpoint_reused;
        Alcotest.(check int)
          "all surviving summaries replayed" c3.Ipcp.Cache.r_procs
          c3.Ipcp.Cache.r_summary_reused);
    Alcotest.test_case "configuration change falls back to cold" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let cache = Ipcp.Cache.Dir dir in
        ignore (analyze ~cache (chain_src ()));
        let r =
          analyze ~config:{ config with Config.jf = Config.Literal } ~cache
            (chain_src ())
        in
        Alcotest.(check (option string))
          "cold with a configuration reason"
          (Some "configuration changed")
          (report r).Ipcp.Cache.r_cold);
    Alcotest.test_case "jobs do not affect cache validity or results" `Quick
      (fun () ->
        let dir = fresh_dir () in
        let cache = Ipcp.Cache.Dir dir in
        ignore (analyze ~cache (chain_src ()));
        (* same cache entry, reread under a parallel configuration *)
        let r =
          analyze
            ~config:{ config with Config.jobs = 4 }
            ~cache
            (chain_src ~leaf_c:9 ())
        in
        Alcotest.(check bool)
          "warm under jobs=4" true
          ((report r).Ipcp.Cache.r_cold = None);
        let cold = analyze (chain_src ~leaf_c:9 ()) in
        Alcotest.(check bool)
          "parallel warm equals sequential cold" true
          (observable r = observable cold));
  ]

(* ------------------------------------------------------------------ *)
(* Envelope resilience *)

let entry_file dir =
  match Ipcp.Cache.entries dir with
  | [ e ] -> Filename.concat dir e.Ipcp.Cache.ei_file
  | es -> Alcotest.failf "expected one cache entry, found %d" (List.length es)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let store_tests =
  [
    Alcotest.test_case "save/load roundtrip and missing key" `Quick (fun () ->
        let dir = fresh_dir () in
        Alcotest.(check bool)
          "missing" true
          (Store.load ~dir ~key:"nope" = Error Store.Missing);
        (match Store.save ~dir ~key:"k" "payload bytes" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "save failed: %s" e);
        Alcotest.(check bool)
          "roundtrip" true
          (Store.load ~dir ~key:"k" = Ok "payload bytes"));
    Alcotest.test_case "format-version skew reads as stale, run goes cold"
      `Quick
      (fun () ->
        with_obs @@ fun () ->
        let dir = fresh_dir () in
        let cache = Ipcp.Cache.Dir dir in
        ignore (analyze ~cache (chain_src ()));
        let path = entry_file dir in
        let contents = read_file path in
        let bumped =
          Astring.String.cuts ~sep:(Fmt.str "IPCP-CACHE %d" Store.format_version)
            contents
          |> String.concat "IPCP-CACHE 9999"
        in
        write_file path bumped;
        let warm = analyze ~cache (chain_src ()) in
        let stale = Metrics.get "incr.cold.stale" in
        let cold = analyze (chain_src ()) in
        Alcotest.(check bool)
          "recovery run equals a from-scratch analysis" true
          (observable warm = observable cold);
        Alcotest.(check bool)
          "cold" true
          ((report warm).Ipcp.Cache.r_cold <> None);
        Alcotest.(check int) "counted as stale" 1 stale);
    Alcotest.test_case "corrupted payload reads as corrupt, run goes cold"
      `Quick
      (fun () ->
        with_obs @@ fun () ->
        let dir = fresh_dir () in
        let cache = Ipcp.Cache.Dir dir in
        ignore (analyze ~cache (chain_src ()));
        let path = entry_file dir in
        let contents = Bytes.of_string (read_file path) in
        (* flip a byte deep in the marshalled payload *)
        let i = Bytes.length contents - 10 in
        Bytes.set contents i
          (Char.chr (Char.code (Bytes.get contents i) lxor 0xff));
        write_file path (Bytes.to_string contents);
        let warm = analyze ~cache (chain_src ()) in
        let corrupt = Metrics.get "incr.cold.corrupt" in
        let cold = analyze (chain_src ()) in
        Alcotest.(check bool)
          "recovery run equals a from-scratch analysis" true
          (observable warm = observable cold);
        Alcotest.(check bool)
          "cold" true
          ((report warm).Ipcp.Cache.r_cold <> None);
        Alcotest.(check int) "counted as corrupt" 1 corrupt;
        (* the bad entry was replaced by the recovery run *)
        match Ipcp.Cache.entries dir with
        | [ e ] ->
            Alcotest.(check bool) "entry healthy again" true (e.Ipcp.Cache.ei_status = Ok ())
        | es -> Alcotest.failf "expected one entry, found %d" (List.length es));
    Alcotest.test_case "clear removes every entry" `Quick (fun () ->
        let dir = fresh_dir () in
        let cache = Ipcp.Cache.Dir dir in
        ignore (analyze ~cache (chain_src ()));
        Alcotest.(check int) "one removed" 1 (Ipcp.Cache.clear dir);
        Alcotest.(check int)
          "none left" 0
          (List.length (Ipcp.Cache.entries dir)));
  ]

(* ------------------------------------------------------------------ *)
(* Warm ≡ cold under random single-procedure edits: a chain of
   procedures each contributing a literal, edited one at a time. *)

let editable_src (cs : int array) =
  let n = Array.length cs in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "PROGRAM main\n  INTEGER x\n  x = 1\n  CALL p0(x)\nEND\n";
  for i = 0 to n - 1 do
    let callee =
      if i = n - 1 then "  PRINT *, a + c\n"
      else Fmt.str "  CALL p%d(a + c)\n" (i + 1)
    in
    Buffer.add_string buf
      (Fmt.str "SUBROUTINE p%d(a)\n  INTEGER a, c\n  c = %d\n%s  PRINT *, c\nEND\n"
         i cs.(i) callee)
  done;
  Buffer.contents buf

let edit_sequence_prop =
  QCheck.Test.make ~count:30 ~name:"warm equals cold under random edits"
    QCheck.(
      pair
        (array_of_size (Gen.int_range 2 4) (int_range 0 50))
        (small_list (pair (int_range 0 3) (int_range 0 50))))
    (fun (cs, edits) ->
      QCheck.assume (Array.length cs >= 2);
      let dir = fresh_dir () in
      let cache = Ipcp.Cache.Dir dir in
      ignore (analyze ~cache (editable_src cs));
      List.for_all
        (fun (i, v) ->
          cs.(i mod Array.length cs) <- v;
          let src = editable_src cs in
          observable (analyze ~cache src) = observable (analyze src))
        edits)

let qcheck_tests = [ QCheck_alcotest.to_alcotest edit_sequence_prop ]

let suites =
  [
    ("incr-lifecycle", lifecycle_tests);
    ("incr-invalidation", invalidation_tests);
    ("incr-store", store_tests);
    ("incr-qcheck", qcheck_tests);
  ]
