(* End-to-end tests of the IPCP pipeline on the paper's motivating shapes. *)

open Ipcp_frontend
module Config = Ipcp_core.Config
module Driver = Ipcp_core.Driver
module Clattice = Ipcp_core.Clattice
module Solver = Ipcp_core.Solver
module Substitute = Ipcp_opt.Substitute
module Intra = Ipcp_opt.Intra
module Complete = Ipcp_opt.Complete

let analyze ?config src =
  snd (Driver.analyze_source ?config ~file:"<test>" src)

let val_of t p name = Solver.val_of t.Driver.solver p name

let check_val t p name expected =
  let got = val_of t p name in
  Alcotest.(check string)
    (Fmt.str "VAL(%s,%s)" p name)
    (Clattice.to_string expected) (Clattice.to_string got)

let cfg jf ~retjf ~md =
  { Config.default with Config.jf; return_jfs = retjf; use_mod = md }

(* ------------------------------------------------------------------ *)

(* constants reach a callee along a single edge *)
let direct_src =
  {|
PROGRAM main
  INTEGER x
  x = 2 + 3
  CALL work(10, x)
END

SUBROUTINE work(a, b)
  INTEGER a, b
  PRINT *, a + b
END
|}

(* a pass-through chain of length 2: literal/intra JFs must lose it *)
let chain_src =
  {|
PROGRAM main
  CALL level1(42)
END

SUBROUTINE level1(n)
  INTEGER n
  CALL level2(n)
END

SUBROUTINE level2(m)
  INTEGER m
  PRINT *, m
END
|}

(* a polynomial of the incoming formal: only polynomial JFs keep it *)
let poly_src =
  {|
PROGRAM main
  CALL outer(5)
END

SUBROUTINE outer(n)
  INTEGER n
  CALL inner(2 * n + 1, n * n)
END

SUBROUTINE inner(a, b)
  INTEGER a, b
  PRINT *, a, b
END
|}

(* an initialisation routine assigns constants to globals; return jump
   functions are what lets the analyzer see them afterwards (the ocean
   effect) *)
let init_src =
  {|
PROGRAM main
  COMMON /cfg/ nx, ny
  CALL setup
  CALL compute
END

SUBROUTINE setup
  COMMON /cfg/ nx, ny
  nx = 64
  ny = 32
END

SUBROUTINE compute
  COMMON /cfg/ nx, ny
  PRINT *, nx * ny
END
|}

(* a callee that does NOT modify the global: MOD information preserves the
   constant across the call *)
let mod_src =
  {|
PROGRAM main
  COMMON /g/ c
  c = 7
  CALL noop(1)
  CALL use
END

SUBROUTINE noop(x)
  INTEGER x, t
  t = x + 1
END

SUBROUTINE use
  COMMON /g/ c
  PRINT *, c
END
|}

(* function results: return jump functions for <result> *)
let func_src =
  {|
PROGRAM main
  INTEGER y
  y = magic(3)
  CALL sink(y)
END

INTEGER FUNCTION magic(k)
  INTEGER k
  magic = 100
END

SUBROUTINE sink(v)
  INTEGER v
  PRINT *, v
END
|}

let pipeline_tests =
  [
    Alcotest.test_case "direct literal edge" `Quick (fun () ->
        List.iter
          (fun jf ->
            let t = analyze ~config:(cfg jf ~retjf:false ~md:true) direct_src in
            check_val t "work" "a" (Clattice.Const 10))
          [ Config.Literal; Config.Intraconst; Config.Passthrough; Config.Polynomial ]);
    Alcotest.test_case "intraprocedural constant edge" `Quick (fun () ->
        let t =
          analyze ~config:(cfg Config.Literal ~retjf:false ~md:true) direct_src
        in
        check_val t "work" "b" Clattice.Bottom;
        let t =
          analyze ~config:(cfg Config.Intraconst ~retjf:false ~md:true) direct_src
        in
        check_val t "work" "b" (Clattice.Const 5));
    Alcotest.test_case "pass-through chain needs pass-through JFs" `Quick
      (fun () ->
        let got jf =
          val_of (analyze ~config:(cfg jf ~retjf:false ~md:true) chain_src)
            "level2" "m"
        in
        Alcotest.(check string) "literal" "⊥"
          (Clattice.to_string (got Config.Literal));
        Alcotest.(check string) "intra" "⊥"
          (Clattice.to_string (got Config.Intraconst));
        Alcotest.(check string) "pass-through" "42"
          (Clattice.to_string (got Config.Passthrough));
        Alcotest.(check string) "polynomial" "42"
          (Clattice.to_string (got Config.Polynomial)));
    Alcotest.test_case "polynomial of formal needs polynomial JFs" `Quick
      (fun () ->
        let got jf name =
          val_of (analyze ~config:(cfg jf ~retjf:false ~md:true) poly_src)
            "inner" name
        in
        Alcotest.(check string) "pass-through a" "⊥"
          (Clattice.to_string (got Config.Passthrough "a"));
        Alcotest.(check string) "polynomial a" "11"
          (Clattice.to_string (got Config.Polynomial "a"));
        Alcotest.(check string) "polynomial b" "25"
          (Clattice.to_string (got Config.Polynomial "b")));
    Alcotest.test_case "init routine needs return jump functions" `Quick
      (fun () ->
        let t = analyze ~config:(cfg Config.Polynomial ~retjf:false ~md:true) init_src in
        check_val t "compute" "nx" Clattice.Bottom;
        let t = analyze ~config:(cfg Config.Polynomial ~retjf:true ~md:true) init_src in
        check_val t "compute" "nx" (Clattice.Const 64);
        check_val t "compute" "ny" (Clattice.Const 32));
    Alcotest.test_case "MOD information preserves constants across calls"
      `Quick (fun () ->
        let t = analyze ~config:(cfg Config.Polynomial ~retjf:false ~md:false) mod_src in
        check_val t "use" "c" Clattice.Bottom;
        let t = analyze ~config:(cfg Config.Polynomial ~retjf:false ~md:true) mod_src in
        check_val t "use" "c" (Clattice.Const 7));
    Alcotest.test_case "function result return jump function" `Quick
      (fun () ->
        let t = analyze ~config:(cfg Config.Polynomial ~retjf:true ~md:true) func_src in
        check_val t "sink" "v" (Clattice.Const 100);
        let t = analyze ~config:(cfg Config.Polynomial ~retjf:false ~md:true) func_src in
        check_val t "sink" "v" Clattice.Bottom);
  ]

(* ------------------------------------------------------------------ *)
(* Substitution counting *)

let subst_tests =
  [
    Alcotest.test_case "substitution rewrites and counts uses" `Quick
      (fun () ->
        let t = analyze ~config:(cfg Config.Polynomial ~retjf:true ~md:true) chain_src in
        let r = Substitute.apply t in
        (* the one constant use is [m] in [PRINT *, m]; [n] at the call
           site is an address and is not rewritten *)
        Alcotest.(check int) "total" 1 r.Substitute.total;
        let printed = Pretty.program_to_string r.Substitute.program in
        let contains needle hay =
          let n = String.length needle and h = String.length hay in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "rewrite visible" true
          (contains "PRINT *, 42" printed));
    Alcotest.test_case "ordering: literal <= intra <= passthrough = poly"
      `Quick (fun () ->
        List.iter
          (fun src ->
            let count jf =
              Substitute.count (analyze ~config:(cfg jf ~retjf:true ~md:true) src)
            in
            let l = count Config.Literal
            and i = count Config.Intraconst
            and p = count Config.Passthrough
            and y = count Config.Polynomial in
            Alcotest.(check bool) "literal <= intra" true (l <= i);
            Alcotest.(check bool) "intra <= passthrough" true (i <= p);
            Alcotest.(check bool) "passthrough <= poly" true (p <= y))
          [ direct_src; chain_src; poly_src; init_src; mod_src; func_src ]);
    Alcotest.test_case "intraprocedural baseline below interprocedural" `Quick
      (fun () ->
        List.iter
          (fun src ->
            let symtab = Sema.parse_and_analyze ~file:"<t>" src in
            let intra = Intra.count symtab in
            let inter =
              Substitute.count
                (Driver.analyze
                   ~config:(cfg Config.Polynomial ~retjf:true ~md:true)
                   symtab)
            in
            Alcotest.(check bool)
              (Fmt.str "intra(%d) <= inter(%d)" intra inter)
              true (intra <= inter))
          [ direct_src; chain_src; poly_src; init_src; mod_src; func_src ]);
  ]

(* ------------------------------------------------------------------ *)
(* Complete propagation: dead-code elimination exposing constants *)

let dead_branch_src =
  {|
PROGRAM main
  COMMON /flags/ debug
  INTEGER n
  debug = 0
  n = 10
  IF (debug .EQ. 1) THEN
    n = 999
  ENDIF
  CALL kernel(n)
END

SUBROUTINE kernel(k)
  INTEGER k
  PRINT *, k
END
|}

let complete_tests =
  [
    Alcotest.test_case "complete propagation prunes dead branches" `Quick
      (fun () ->
        let r = Complete.run dead_branch_src in
        (* after pruning [IF (0 .EQ. 1)], n = 10 flows into kernel *)
        check_val r.Complete.final "kernel" "k" (Clattice.Const 10);
        Alcotest.(check bool) "converged" true (r.Complete.rounds <= 5));
    Alcotest.test_case "plain propagation already gets dead_branch via SSA"
      `Quick (fun () ->
        (* without DCE the conflicting definition under the constant-false
           branch forces a phi-meet to ⊥: complete propagation is strictly
           stronger here *)
        let t = analyze dead_branch_src in
        check_val t "kernel" "k" Clattice.Bottom);
  ]

let suites =
  [
    ("core-pipeline", pipeline_tests);
    ("core-substitution", subst_tests);
    ("core-complete", complete_tests);
  ]
