(** Telemetry tests: the JSON codec, Chrome-trace validity (nesting +
    monotonicity + stage coverage), agreement between the metric
    registry and the solver's own statistics, and the zero-output
    guarantee when telemetry is disabled. *)

module Obs = Ipcp_obs.Obs
module Trace = Ipcp_obs.Trace
module Metrics = Ipcp_obs.Metrics
module Json = Ipcp_obs.Json
module Config = Ipcp_core.Config
module Driver = Ipcp_core.Driver
module Substitute = Ipcp_opt.Substitute
module Programs = Ipcp_suite.Programs

(* Every test that turns telemetry on runs under this bracket so the
   global switch and registries never leak into unrelated tests. *)
let with_obs f =
  Obs.set_enabled true;
  Trace.reset ();
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Trace.reset ();
      Metrics.reset ())
    f

let analyze name =
  let p = List.find (fun p -> p.Programs.name = name) Programs.all in
  Driver.analyze_source ~file:p.Programs.name p.Programs.source

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("n", Json.Int (-42));
        ("x", Json.Num 1.5);
        ("s", Json.Str "a \"b\"\n\tc");
        ("a", Json.Arr [ Json.Int 1; Json.Str "two"; Json.Bool false ]);
        ("o", Json.Obj [ ("k", Json.Int 7) ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok v' -> Alcotest.(check string) "roundtrip"
               (Json.to_string v) (Json.to_string v')

let test_json_nonfinite () =
  (* non-finite floats must degrade to null, not produce invalid JSON *)
  let s = Json.to_string (Json.Arr [ Json.Num Float.nan;
                                     Json.Num Float.infinity ]) in
  Alcotest.(check string) "nan/inf render as null" "[null,null]" s;
  match Json.parse s with
  | Ok (Json.Arr [ Json.Null; Json.Null ]) -> ()
  | Ok j -> Alcotest.failf "unexpected parse: %s" (Json.to_string j)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok j ->
          Alcotest.failf "%S parsed as %s but should fail" s
            (Json.to_string j))
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "{\"a\":}"; "1 2"; "" ]

(* ------------------------------------------------------------------ *)
(* Chrome trace export *)

let fail_json what = Alcotest.failf "trace: %s" what

let get_events trace_str =
  match Json.parse trace_str with
  | Error e -> fail_json ("export is not valid JSON: " ^ e)
  | Ok j -> (
      match Option.bind (Json.member "traceEvents" j) Json.to_list with
      | None -> fail_json "no traceEvents array"
      | Some evs -> evs)

let ev_field name ev to_x =
  match Option.bind (Json.member name ev) to_x with
  | Some x -> x
  | None -> fail_json ("event missing " ^ name)

(* B/E stack discipline per tid + globally monotonic non-decreasing
   timestamps (the export sorts by stamp; worker lanes interleave with
   the main lane, so nesting only holds within a tid) *)
let check_wellformed evs =
  let last_ts = ref neg_infinity in
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 7 in
  List.iter
    (fun ev ->
      let name = ev_field "name" ev Json.to_str in
      let ph = ev_field "ph" ev Json.to_str in
      let tid = ev_field "tid" ev Json.to_int in
      let ts =
        match Option.bind (Json.member "ts" ev) Json.to_float with
        | Some f -> f
        | None -> float_of_int (ev_field "ts" ev Json.to_int)
      in
      if ts < !last_ts then fail_json "timestamps not monotonic";
      last_ts := ts;
      let stack =
        Option.value ~default:[] (Hashtbl.find_opt stacks tid)
      in
      match ph with
      | "B" -> Hashtbl.replace stacks tid (name :: stack)
      | "E" -> (
          match stack with
          | top :: rest when top = name -> Hashtbl.replace stacks tid rest
          | top :: _ ->
              fail_json
                (Printf.sprintf "tid %d: E %S closes open span %S" tid name
                   top)
          | [] ->
              fail_json
                (Printf.sprintf "tid %d: E %s with empty span stack" tid
                   name))
      | p -> fail_json ("unexpected phase " ^ p))
    evs;
  Hashtbl.iter
    (fun tid stack ->
      if stack <> [] then
        fail_json
          (Printf.sprintf "tid %d: %d unclosed span(s)" tid
             (List.length stack)))
    stacks

let test_trace_valid () =
  with_obs @@ fun () ->
  let _, d = analyze "adm" in
  (* stage 4 (result recording) runs lazily, from the substitution
     pass — same shape as the CLI's analyze command *)
  ignore (Substitute.apply d);
  let evs = get_events (Trace.export_chrome ()) in
  Alcotest.(check bool) "has events" true (evs <> []);
  check_wellformed evs;
  (* the four pipeline stages of §4.1 must all be covered *)
  let names =
    List.map (fun ev -> ev_field "name" ev Json.to_str) evs
  in
  List.iter
    (fun stage ->
      Alcotest.(check bool) ("span " ^ stage) true (List.mem stage names))
    [
      "analyze";
      "stage1:return-jump-functions";
      "stage2:jump-functions";
      "stage3:propagate";
      "stage4:record";
      "verify";
    ]

(* Worker lanes: a 4-lane pool batch records [pool:task] spans on every
   lane's own tid, and the drained events survive the DLS hand-off into
   the main lane's export.  The tasks rendezvous on an atomic so each of
   the four lanes is forced to claim exactly one task — the worker tids
   are then guaranteed to appear, independent of the host's core count
   or scheduling. *)
let test_trace_workers () =
  with_obs @@ fun () ->
  (* the rendezvous needs four truly concurrent lanes even on a
     single-core host, so bypass the pool's hardware lane clamp *)
  Ipcp_par.Pool.oversubscribe := true;
  let started = Atomic.make 0 in
  let out =
    Fun.protect
      ~finally:(fun () -> Ipcp_par.Pool.oversubscribe := false)
      (fun () ->
        Ipcp_par.Pool.map_array ~jobs:4
          (fun i ->
            Atomic.incr started;
            while Atomic.get started < 4 do
              Domain.cpu_relax ()
            done;
            i * 2)
          [| 0; 1; 2; 3 |])
  in
  Alcotest.(check (array int)) "batch result" [| 0; 2; 4; 6 |] out;
  (* per-task telemetry merged back: one [pool.task]/[pool.wait] sample
     per lane, one batch of four tasks *)
  Alcotest.(check int) "pool.task samples" 4 (Metrics.get "pool.task.count");
  Alcotest.(check int) "pool.wait samples" 4 (Metrics.get "pool.wait.count");
  Alcotest.(check int) "one batch" 1 (Metrics.get "pool.batches");
  Alcotest.(check int) "four tasks" 4 (Metrics.get "pool.tasks");
  (* and a full parallel analysis on top, for the driver integration *)
  let p = List.find (fun p -> p.Programs.name = "spec77") Programs.all in
  ignore
    (Driver.analyze_source
       ~config:{ Config.default with Config.jobs = 4 }
       ~file:p.Programs.name p.Programs.source);
  let evs = get_events (Trace.export_chrome ()) in
  check_wellformed evs;
  let tids = List.map (fun ev -> ev_field "tid" ev Json.to_int) evs in
  Alcotest.(check bool) "main-lane events" true (List.mem 1 tids);
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "worker tid %d events" w)
        true (List.mem w tids))
    [ 2; 3; 4 ]

let test_trace_disabled () =
  Obs.set_enabled false;
  Trace.reset ();
  Metrics.reset ();
  ignore (analyze "adm");
  Alcotest.(check bool) "no events when off" true (Trace.is_empty ());
  Alcotest.(check (list (pair string int))) "no counters when off" []
    (Metrics.snapshot ());
  Alcotest.(check int) "no convergence log when off" 0
    (List.length (Metrics.convergence ()))

(* ------------------------------------------------------------------ *)
(* metric registry vs. the solver's own numbers *)

let test_counters_match_solver () =
  List.iter
    (fun name ->
      with_obs @@ fun () ->
      let _, d = analyze name in
      let s = d.Driver.solver.Ipcp_core.Solver.stats in
      let chk what counter expect =
        Alcotest.(check int)
          (Printf.sprintf "%s: %s" name what)
          expect (Metrics.get counter)
      in
      chk "pops" "solver.pops" s.Ipcp_core.Solver.pops;
      chk "jf evals" "solver.jf_evals" s.Ipcp_core.Solver.jf_evals;
      chk "jf eval cost" "solver.jf_eval_cost"
        s.Ipcp_core.Solver.jf_eval_cost;
      chk "lowerings" "solver.lowerings" s.Ipcp_core.Solver.lowerings;
      (* every pop logs one convergence row *)
      Alcotest.(check int)
        (name ^ ": convergence rows")
        s.Ipcp_core.Solver.pops
        (List.length (Metrics.convergence ())))
    [ "adm"; "linpackd"; "mdg"; "spec77" ]

let test_convergence_population () =
  with_obs @@ fun () ->
  ignore (analyze "mdg");
  match Metrics.convergence () with
  | [] -> Alcotest.fail "empty convergence log"
  | first :: _ as rows ->
      let size r =
        Metrics.(r.c_top + r.c_const + r.c_bottom)
      in
      List.iteri
        (fun i r ->
          Alcotest.(check int)
            (Printf.sprintf "row %d: iteration number" i)
            i r.Metrics.c_iter;
          Alcotest.(check int)
            (Printf.sprintf "row %d: VAL population constant" i)
            (size first) (size r))
        rows

let test_jumpfn_census_agrees () =
  with_obs @@ fun () ->
  let _, d = analyze "spec77" in
  let c = Driver.census d in
  let chk what counter expect =
    Alcotest.(check int) what expect (Metrics.get counter)
  in
  chk "bottom jfs" "jumpfn.built.bottom" c.Driver.n_bottom;
  chk "const jfs" "jumpfn.built.const" c.Driver.n_const;
  chk "pass-through jfs" "jumpfn.built.passthrough" c.Driver.n_passthrough;
  chk "polynomial jfs" "jumpfn.built.polynomial" c.Driver.n_poly

let test_substitute_counter () =
  with_obs @@ fun () ->
  let _, d = analyze "linpackd" in
  let r = Substitute.apply d in
  Alcotest.(check bool) "some substitutions" true (r.Substitute.total > 0);
  Alcotest.(check int) "substitute counter = result total"
    r.Substitute.total
    (Metrics.get "substitute.substituted")

(* ------------------------------------------------------------------ *)
(* Config.pp renders verify_ir (regression: it used to be dropped) *)

let test_config_pp_verify () =
  let pp c = Fmt.str "%a" Config.pp c in
  let on = { Config.default with Config.verify_ir = true } in
  let off = { Config.default with Config.verify_ir = false } in
  Alcotest.(check bool) "verify_ir visible in Config.pp" true
    (pp on <> pp off);
  Alcotest.(check bool) "+verify marker" true
    (Astring.String.is_infix ~affix:"+verify" (pp on));
  Alcotest.(check bool) "-verify marker" true
    (Astring.String.is_infix ~affix:"-verify" (pp off))

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "json non-finite" `Quick test_json_nonfinite;
        Alcotest.test_case "json parse errors" `Quick test_json_errors;
        Alcotest.test_case "trace valid + nested + staged" `Quick
          test_trace_valid;
        Alcotest.test_case "worker-lane trace events survive the drain"
          `Quick test_trace_workers;
        Alcotest.test_case "disabled telemetry is silent" `Quick
          test_trace_disabled;
        Alcotest.test_case "counters match Solver.stats" `Quick
          test_counters_match_solver;
        Alcotest.test_case "convergence log population" `Quick
          test_convergence_population;
        Alcotest.test_case "jump-function census agrees" `Quick
          test_jumpfn_census_agrees;
        Alcotest.test_case "substitute counter" `Quick
          test_substitute_counter;
        Alcotest.test_case "Config.pp renders verify_ir" `Quick
          test_config_pp_verify;
      ] );
  ]
