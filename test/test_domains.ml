(* Tests for the abstract-domain framework and the value-range pipeline:

   - interval lattice laws and transfer-function soundness on sampled
     concrete values (QCheck);
   - the Const instance of the generic solver reaches the same fixpoint
     as the historical entry points on all bundled suite programs, under
     either worklist discipline;
   - the interval pipeline converges on the suite, is deterministic
     across job counts, and its entry ranges contain every proven
     constant;
   - the range-soundness keystone: every value the interpreter observes
     at a located scalar read lies inside the inferred interval;
   - the range-aware lint checks (proved verdicts, W008) and the
     [--werror] exit codes of the CLI. *)

open Ipcp_frontend
open Ipcp_frontend.Names
module I = Ipcp_domains.Interval
module C = Ipcp_domains.Clattice
module Config = Ipcp_core.Config
module Driver = Ipcp_core.Driver
module Solver = Ipcp_core.Solver
module Ranges = Ipcp_core.Ranges
module Lint = Ipcp_analysis.Lint
module Interp = Ipcp_interp.Interp
module Generator = Ipcp_gen.Generator
module Programs = Ipcp_suite.Programs

let analyze ?config src =
  let symtab = Sema.parse_and_analyze ~file:"<dom>" src in
  (symtab, Driver.analyze ?config symtab)

(* ------------------------------------------------------------------ *)
(* Interval domain: lattice laws on generated intervals *)

let interval_gen : I.t QCheck.Gen.t =
  QCheck.Gen.(
    frequency
      [
        (1, return I.top);
        (1, return I.bot);
        ( 4,
          map2
            (fun a b -> I.of_bounds (min a b) (max a b))
            (int_range (-20) 20) (int_range (-20) 20) );
        (1, map (fun a -> I.Range (I.Ninf, I.Fin a)) (int_range (-20) 20));
        (1, map (fun a -> I.Range (I.Fin a, I.Pinf)) (int_range (-20) 20));
      ])

let interval_arb = QCheck.make ~print:I.to_string interval_gen

let interval_laws =
  let open QCheck in
  [
    Test.make ~count:1000 ~name:"meet commutative"
      (pair interval_arb interval_arb) (fun (a, b) ->
        I.equal (I.meet a b) (I.meet b a));
    Test.make ~count:1000 ~name:"meet associative"
      (triple interval_arb interval_arb interval_arb) (fun (a, b, c) ->
        I.equal (I.meet (I.meet a b) c) (I.meet a (I.meet b c)));
    Test.make ~count:1000 ~name:"meet idempotent" interval_arb (fun a ->
        I.equal (I.meet a a) a);
    Test.make ~count:1000 ~name:"join idempotent" interval_arb (fun a ->
        I.equal (I.join a a) a);
    Test.make ~count:1000 ~name:"top neutral for meet, absorbing for join"
      interval_arb (fun a ->
        I.equal (I.meet I.top a) a && I.equal (I.join I.top a) I.top);
    Test.make ~count:1000 ~name:"bot absorbing for meet, neutral for join"
      interval_arb (fun a ->
        I.equal (I.meet I.bot a) I.bot && I.equal (I.join I.bot a) a);
    Test.make ~count:1000 ~name:"meet is a lower bound"
      (pair interval_arb interval_arb) (fun (a, b) ->
        let m = I.meet a b in
        I.leq m a && I.leq m b);
    Test.make ~count:1000 ~name:"widen keeps every value of the new interval"
      (pair interval_arb interval_arb) (fun (old_, next) ->
        let w = I.widen old_ next in
        List.for_all
          (fun v -> (not (I.contains next v)) || I.contains w v)
          [ -4097; -100; -5; -1; 0; 1; 5; 100; 4097 ]);
    Test.make ~count:1000 ~name:"narrow stays between refit and wide"
      (pair interval_arb interval_arb) (fun (wide, refit) ->
        let n = I.narrow wide refit in
        List.for_all
          (fun v ->
            (not (I.contains refit v && I.contains wide v)) || I.contains n v)
          [ -100; -5; -1; 0; 1; 5; 100 ]);
  ]

(* ------------------------------------------------------------------ *)
(* Interval transfers: sound on sampled concrete values *)

let ops = [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div ]

let relops = [ Ast.Req; Ast.Rne; Ast.Rlt; Ast.Rle; Ast.Rgt; Ast.Rge ]

(* a concrete point (x, y) and intervals built around it *)
let sample_gen =
  QCheck.Gen.(
    map
      (fun ((oi, (x, y)), ((a1, a2), (b1, b2))) ->
        (oi, x, y, I.of_bounds (x - a1) (x + a2), I.of_bounds (y - b1) (y + b2)))
      (pair
         (pair (int_range 0 99) (pair (int_range (-30) 30) (int_range (-30) 30)))
         (pair
            (pair (int_range 0 5) (int_range 0 5))
            (pair (int_range 0 5) (int_range 0 5)))))

let sample_arb =
  QCheck.make
    ~print:(fun (oi, x, y, a, b) ->
      Printf.sprintf "op#%d x=%d y=%d a=%s b=%s" oi x y (I.to_string a)
        (I.to_string b))
    sample_gen

let transfer_props =
  let open QCheck in
  [
    Test.make ~count:3000 ~name:"binop sound: f(x,y) ∈ f#(a,b)" sample_arb
      (fun (oi, x, y, a, b) ->
        let op = List.nth ops (oi mod List.length ops) in
        match Ast.eval_binop op x y with
        | None -> true (* faulting op: no value flows *)
        | Some v -> I.contains (I.binop op a b) v);
    Test.make ~count:1000 ~name:"unop sound: -x ∈ neg#(a)" sample_arb
      (fun (_, x, _, a, _) ->
        I.contains (I.unop Ast.Neg a) (Ast.eval_unop Ast.Neg x));
    Test.make ~count:2000 ~name:"intrinsics sound on samples" sample_arb
      (fun (oi, x, y, a, b) ->
        let i =
          List.nth
            [ Ast.Imod; Ast.Imax; Ast.Imin ]
            (oi mod 3)
        in
        match Ast.eval_intrin i [ x; y ] with
        | None -> true
        | Some v -> I.contains (I.intrin i [ a; b ]) v);
    Test.make ~count:2000 ~name:"abs sound on samples" sample_arb
      (fun (_, x, _, a, _) ->
        match Ast.eval_intrin Ast.Iabs [ x ] with
        | None -> true
        | Some v -> I.contains (I.intrin Ast.Iabs [ a ]) v);
    Test.make ~count:3000 ~name:"filter keeps every satisfying point"
      sample_arb (fun (oi, x, y, a, b) ->
        let op = List.nth relops (oi mod List.length relops) in
        if Ast.eval_relop op x y then begin
          let a', b' = I.filter op a b in
          I.contains a' x && I.contains b' y
        end
        else true);
  ]

(* ------------------------------------------------------------------ *)
(* Const instance: the generic solver reaches the historical fixpoint *)

module CS = Solver.Make (Ipcp_domains.Clattice)

let vals_equal = SM.equal (SM.equal C.equal)

let const_identity_tests =
  [
    Alcotest.test_case
      "suite: fresh Const instance matches the pipeline fixpoint (both \
       disciplines)" `Quick (fun () ->
        List.iter
          (fun (p : Programs.program) ->
            let _, t = analyze p.Programs.source in
            let vals = t.Driver.solver.Solver.vals in
            List.iter
              (fun strategy ->
                let s2 =
                  CS.solve ~metrics_ns:"test.solver" ~strategy
                    ~symtab:t.Driver.symtab ~cg:t.Driver.cg ~jfs:t.Driver.jfs
                    ()
                in
                if not (vals_equal vals s2.CS.vals) then
                  Alcotest.failf "%s: VAL sets differ" p.Programs.name)
              [ Solver.Scc_order; Solver.Fifo ])
          Programs.all);
  ]

(* ------------------------------------------------------------------ *)
(* The interval pipeline on the bundled suite *)

let ranges_of ?config src =
  let _, t = analyze ?config src in
  (t, Driver.analyze_ranges t)

let suite_ranges_tests =
  [
    Alcotest.test_case
      "suite: interval pipeline converges and covers every proven constant"
      `Quick (fun () ->
        List.iter
          (fun (p : Programs.program) ->
            let t, rng = ranges_of p.Programs.source in
            SM.iter
              (fun proc _ ->
                SM.iter
                  (fun name c ->
                    let r = Ranges.ISolver.val_of rng.Ranges.solver proc name in
                    if not (I.contains r c) then
                      Alcotest.failf "%s: %s.%s = %d outside %s"
                        p.Programs.name proc name c (I.to_string r))
                  (Driver.constants t proc))
              t.Driver.symtab.Symtab.procs;
            Alcotest.(check bool)
              (p.Programs.name ^ ": has range facts")
              true
              (not (Loc.Map.is_empty rng.Ranges.facts)))
          Programs.all);
    Alcotest.test_case "suite: ranges JSON identical for jobs 1 and 4" `Quick
      (fun () ->
        List.iter
          (fun (p : Programs.program) ->
            let render jobs =
              let _, rng =
                ranges_of
                  ~config:{ Config.default with Config.jobs }
                  p.Programs.source
              in
              Ipcp_obs.Json.to_string (Ranges.json rng)
            in
            Alcotest.(check string) p.Programs.name (render 1) (render 4))
          Programs.all);
    Alcotest.test_case
      "suite: range facts upgrade fault-site verdicts beyond constants"
      `Quick (fun () ->
        (* an empty fact map reduces the range paths to "no knowledge", so
           the verdict delta counts exactly the sites only ranges decide *)
        let decided (vt : Lint.verdict_totals) = vt.Lint.n_safe + vt.Lint.n_fault in
        let upgraded =
          List.fold_left
            (fun acc (p : Programs.program) ->
              let t, rng = ranges_of p.Programs.source in
              let _, with_ranges = Lint.run_with_verdicts ~ranges:rng t in
              let _, const_only =
                Lint.run_with_verdicts
                  ~ranges:{ rng with Ranges.facts = Loc.Map.empty }
                  t
              in
              acc + (decided with_ranges - decided const_only))
            0 Programs.all
        in
        Alcotest.(check bool)
          "at least one site proved by ranges alone" true (upgraded >= 1));
  ]

(* ------------------------------------------------------------------ *)
(* Keystone soundness: observed values lie inside the inferred ranges *)

let ranges_sound_prop =
  QCheck.Test.make ~count:60
    ~name:"every interpreter-observed value lies in the inferred interval"
    QCheck.(make ~print:string_of_int Gen.(int_range 0 400))
    (fun seed ->
      let src =
        Generator.generate
          ~params:
            {
              Generator.default with
              Generator.seed;
              initialised = seed mod 2 = 0;
            }
          ()
      in
      let symtab = Sema.parse_and_analyze ~file:"<gen>" src in
      let t = Driver.analyze symtab in
      let rng = Driver.analyze_ranges t in
      let viol = ref None in
      let observe l v =
        match Loc.Map.find_opt l rng.Ranges.facts with
        | Some r when not (I.contains r v) ->
            if !viol = None then viol := Some (l, v, r)
        | _ -> ()
      in
      ignore (Interp.run ~seed ~observe symtab);
      match !viol with
      | None -> true
      | Some (l, v, r) ->
          QCheck.Test.fail_reportf "seed %d: at %s observed %d outside %s\n%s"
            seed (Loc.to_string l) v (I.to_string r) src)

(* ------------------------------------------------------------------ *)
(* Range-aware lint: proved verdicts and W008 *)

let lint_with_ranges src =
  let _, t = analyze src in
  let rng = Driver.analyze_ranges t in
  Lint.run_with_verdicts ~ranges:rng t

let has_verdict idv v fs =
  List.exists
    (fun f -> Lint.id f.Lint.f_check = idv && f.Lint.f_verdict = Some v)
    fs

let src_refined_divzero =
  {|
PROGRAM p
  INTEGER n, k
  READ *, n
  IF (n .EQ. 0) THEN
    k = 1 / n
    PRINT *, k
  ENDIF
END
|}

let src_refined_subscript =
  {|
PROGRAM p
  INTEGER a(10), i
  READ *, i
  IF (i .GE. 1) THEN
    IF (i .LE. 10) THEN
      a(i) = 1
      PRINT *, a(i)
    ENDIF
  ENDIF
END
|}

let src_const_trip =
  {|
PROGRAM p
  INTEGER n, i, s
  n = 10
  s = 0
  DO i = 1, n
    s = s + i
  ENDDO
  PRINT *, s
END
|}

let range_lint_tests =
  [
    Alcotest.test_case
      "E001 proved by branch refinement where constants are silent" `Quick
      (fun () ->
        let _, t = analyze src_refined_divzero in
        Alcotest.(check bool)
          "no E001 from constants alone" false
          (List.exists
             (fun f -> Lint.id f.Lint.f_check = "IPCP-E001")
             (Lint.run t));
        let fs, vt = lint_with_ranges src_refined_divzero in
        Alcotest.(check bool)
          "E001 with a proved-fault verdict" true
          (has_verdict "IPCP-E001" Lint.Proved_fault fs);
        Alcotest.(check bool) "tallied as proved fault" true (vt.Lint.n_fault >= 1));
    Alcotest.test_case "E002 candidates proved safe by refined ranges" `Quick
      (fun () ->
        let fs, vt = lint_with_ranges src_refined_subscript in
        Alcotest.(check bool)
          "no E002 finding" false
          (List.exists (fun f -> Lint.id f.Lint.f_check = "IPCP-E002") fs);
        Alcotest.(check bool)
          "both subscript sites proved safe" true (vt.Lint.n_safe >= 2);
        Alcotest.(check int) "nothing left unknown" 0 vt.Lint.n_unknown);
    Alcotest.test_case "W008 fires only with range facts" `Quick (fun () ->
        let _, t = analyze src_const_trip in
        Alcotest.(check bool)
          "absent without ranges" false
          (List.exists
             (fun f -> Lint.id f.Lint.f_check = "IPCP-W008")
             (Lint.run t));
        let fs, _ = lint_with_ranges src_const_trip in
        let w8 =
          List.filter (fun f -> Lint.id f.Lint.f_check = "IPCP-W008") fs
        in
        Alcotest.(check int) "one finding" 1 (List.length w8);
        Alcotest.(check bool)
          "names the trip count" true
          (Astring.String.is_infix ~affix:"constant 10" (List.hd w8).Lint.f_msg));
    Alcotest.test_case "literal-bound loops are not flagged by W008" `Quick
      (fun () ->
        let fs, _ =
          lint_with_ranges
            {|
PROGRAM p
  INTEGER i, s
  s = 0
  DO i = 1, 10
    s = s + i
  ENDDO
  PRINT *, s
END
|}
        in
        Alcotest.(check bool)
          "no W008" false
          (List.exists (fun f -> Lint.id f.Lint.f_check = "IPCP-W008") fs));
  ]

(* ------------------------------------------------------------------ *)
(* CLI exit codes: --werror with and without --disable *)

let ipcp_exe = Filename.concat ".." (Filename.concat "bin" "ipcp.exe")

let with_tmp_source src f =
  let path = Filename.temp_file "ipcp_lint" ".f" in
  let oc = open_out path in
  output_string oc src;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let run_lint args path =
  Sys.command
    (Filename.quote_command ipcp_exe ~stdout:"/dev/null" ~stderr:"/dev/null"
       (("lint" :: args) @ [ path ]))

let src_warning_only =
  {|
PROGRAM p
  INTEGER n
  n = 3
  IF (n .GT. 0) THEN
    PRINT *, 1
  ENDIF
END
|}

let cli_tests =
  [
    Alcotest.test_case "--werror promotes a warning to exit 1" `Quick
      (fun () ->
        with_tmp_source src_warning_only (fun path ->
            Alcotest.(check int) "clean without werror" 0 (run_lint [] path);
            Alcotest.(check int)
              "werror fails" 1
              (run_lint [ "--werror" ] path);
            Alcotest.(check int)
              "werror with the check disabled passes" 0
              (run_lint [ "--werror"; "--disable"; "IPCP-W003" ] path)));
    Alcotest.test_case "--werror also promotes range-backed warnings" `Quick
      (fun () ->
        with_tmp_source src_const_trip (fun path ->
            Alcotest.(check int)
              "clean without ranges" 0
              (run_lint [ "--werror" ] path);
            Alcotest.(check int)
              "range-backed W008 fails under werror" 1
              (run_lint [ "--werror"; "--ranges" ] path);
            Alcotest.(check int)
              "disabled W008 passes again" 0
              (run_lint [ "--werror"; "--ranges"; "--disable"; "IPCP-W008" ]
                 path)));
  ]

(* ------------------------------------------------------------------ *)

let suites =
  [
    ("domains-interval", List.map QCheck_alcotest.to_alcotest interval_laws);
    ("domains-transfer", List.map QCheck_alcotest.to_alcotest transfer_props);
    ("domains-const-identity", const_identity_tests);
    ("ranges-suite", suite_ranges_tests);
    ( "ranges-soundness",
      [ QCheck_alcotest.to_alcotest ranges_sound_prop ] );
    ("ranges-lint", range_lint_tests);
    ("ranges-cli", cli_tests);
  ]
