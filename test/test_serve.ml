(* Tests of the analysis server: golden JSON-RPC transcripts through the
   dispatcher (exact response bytes and error codes per method, the
   malformed/unknown/closed/stale cases included), batch semantics
   (coalescing, admission ordering), a soak run asserting bounded heap
   and byte-identical warm responses, and the QCheck concurrency-
   determinism property (jobs-1 vs jobs-4 response streams). *)

module Server = Ipcp_serve.Server
module Protocol = Ipcp_serve.Protocol
module Client = Ipcp_serve.Client
module Json = Ipcp_obs.Json
module Ipcp = Ipcp_api.Ipcp

let config = { Ipcp.Config.default with Ipcp.Config.jobs = 1 }
let server () = Server.create ~config ()

(* the golden program: two constants reaching work, one substitution
   chain in main *)
let src =
  {|
PROGRAM main
  INTEGER x
  x = 2 + 3
  CALL work(10, x)
END

SUBROUTINE work(a, b)
  INTEGER a, b
  PRINT *, a + b
END
|}

(* the same program with main's literal actual edited: work's summary
   changes but only main's content fingerprint does *)
let src_b = Astring.String.cuts ~sep:"10" src |> String.concat "11"

let frame ?(params = []) id meth =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Int id);
         ("method", Json.Str meth);
         ("params", Json.Obj params);
       ])

let session_params ?generation sid =
  ("session", Json.Int sid)
  ::
  (match generation with
  | Some g -> [ ("generation", Json.Int g) ]
  | None -> [])

let result_of line =
  match Json.parse line with
  | Error e -> Alcotest.failf "unparseable response %s: %s" line e
  | Ok j -> (
      match (Json.member "result" j, Protocol.response_error j) with
      | Some r, None -> r
      | _, Some (code, msg) ->
          Alcotest.failf "error response [%d] %s" code msg
      | None, None -> Alcotest.failf "no result in %s" line)

let error_code line =
  match Json.parse line with
  | Error e -> Alcotest.failf "unparseable response %s: %s" line e
  | Ok j -> (
      match Protocol.response_error j with
      | Some (code, _) -> code
      | None -> Alcotest.failf "expected an error response, got %s" line)

(* ------------------------------------------------------------------ *)
(* Golden transcripts: one request per batch, exact response bytes *)

let golden_tests =
  let check_line sv input expected =
    Alcotest.(check string) input expected (Server.handle_line sv input)
  in
  [
    Alcotest.test_case "lifecycle and query methods" `Quick (fun () ->
        let sv = server () in
        check_line sv
          (frame 1 "open"
             ~params:
               [ ("source", Json.Str src); ("file", Json.Str "g.f") ])
          {|{"id":1,"result":{"session":1,"generation":1,"fingerprint":"8a0c771db6dcecec2815b4d00390fcf2","procedures":["main","work"],"dirty":{"generation":1,"procs":2,"changed":2,"dirty":2,"dirty_procs":[]}}}|};
        check_line sv
          (frame 2 "analyze" ~params:(session_params 1))
          {|{"id":2,"result":{"procedures":["main","work"],"constants":{"work":{"a":10,"b":5}},"total_constants":2,"substituted":2,"census":{"const":2,"passthrough":0,"polynomial":0,"bottom":0,"total_cost":2}}}|};
        check_line sv
          (frame 3 "query"
             ~params:
               (("proc", Json.Str "work")
               :: ("what", Json.Str "constants")
               :: session_params 1))
          {|{"id":3,"result":{"proc":"work","constants":{"a":10,"b":5}}}|};
        check_line sv
          (frame 4 "query"
             ~params:
               (("proc", Json.Str "work")
               :: ("what", Json.Str "ranges")
               :: session_params 1))
          {|{"id":4,"result":{"proc":"work","ranges":{"a":"10","b":"5"}}}|};
        check_line sv
          (frame 5 "query"
             ~params:
               (("proc", Json.Str "work")
               :: ("what", Json.Str "lints")
               :: session_params 1))
          {|{"id":5,"result":{"proc":"work","findings":[{"check":"IPCP-I007","severity":"info","loc":"g.f:8:1","message":"formal parameter a is the constant 10 at every call site"},{"check":"IPCP-I007","severity":"info","loc":"g.f:8:1","message":"formal parameter b is the constant 5 at every call site"}]}}|};
        check_line sv
          (frame 6 "ranges" ~params:(session_params 1))
          {|{"id":6,"result":{"procedures":[{"procedure":"main","entry":{}},{"procedure":"work","entry":{"a":"10","b":"5"}}],"facts":[{"loc":"g.f:10:12","range":"10"},{"loc":"g.f:10:16","range":"5"}],"summary":{"procedures":2,"facts":2,"singleton":2,"bounded":0,"unbounded":0,"unreached":0}}}|};
        check_line sv
          (frame 7 "lint" ~params:(session_params 1))
          {|{"id":7,"result":{"findings":[{"check":"IPCP-I007","severity":"info","file":"g.f","line":8,"col":1,"procedure":"work","message":"formal parameter a is the constant 10 at every call site"},{"check":"IPCP-I007","severity":"info","file":"g.f","line":8,"col":1,"procedure":"work","message":"formal parameter b is the constant 5 at every call site"}],"summary":{"errors":0,"warnings":0,"infos":2}}}|};
        (* invalidate: work's caller closure is {main, work}; generation
           bumps without reanalysis *)
        check_line sv
          (frame 8 "invalidate"
             ~params:
               (("procs", Json.Arr [ Json.Str "work" ]) :: session_params 1))
          {|{"id":8,"result":{"dirty":{"generation":2,"procs":2,"changed":1,"dirty":2,"dirty_procs":["main","work"]}}}|};
        (* update: only main's content fingerprint changes, and main has
           no callers — the dirty closure is just main *)
        check_line sv
          (frame 9 "update"
             ~params:
               (("source", Json.Str src_b)
               :: ("file", Json.Str "g.f")
               :: session_params 1))
          {|{"id":9,"result":{"fingerprint":"4f140f60d1426a84b9e243ce3902d8cf","dirty":{"generation":3,"procs":2,"changed":1,"dirty":1,"dirty_procs":["main"]}}}|};
        (* a query prepared against the pre-update generation is stale *)
        check_line sv
          (frame 10 "analyze" ~params:(session_params ~generation:2 1))
          {|{"id":10,"error":{"code":-32004,"message":"generation 2 is stale (session is at 3)"}}|};
        check_line sv
          (frame 16 "close" ~params:(session_params 1))
          {|{"id":16,"result":{"closed":1}}|};
        check_line sv
          (frame 17 "analyze" ~params:(session_params 1))
          {|{"id":17,"error":{"code":-32002,"message":"session 1 is closed"}}|};
        Alcotest.(check int) "no open sessions" 0 (Server.session_count sv));
    Alcotest.test_case "error responses" `Quick (fun () ->
        let sv = server () in
        ignore
          (Server.handle_line sv
             (frame 1 "open"
                ~params:
                  [ ("source", Json.Str src); ("file", Json.Str "g.f") ]));
        check_line sv
          (frame 12 "nonsense")
          {|{"id":12,"error":{"code":-32601,"message":"unknown method nonsense"}}|};
        check_line sv
          (frame 13 "query"
             ~params:(("proc", Json.Str "nosuch") :: session_params 1))
          {|{"id":13,"error":{"code":-32006,"message":"unknown procedure nosuch"}}|};
        check_line sv
          (frame 14 "query" ~params:(session_params 7))
          {|{"id":14,"error":{"code":-32001,"message":"no session 7"}}|};
        check_line sv (frame 15 "analyze")
          {|{"id":15,"error":{"code":-32602,"message":"missing \"session\""}}|};
        (* malformed frames: broken JSON, then a well-formed object that
           violates the frame contract *)
        Alcotest.(check int)
          "unterminated string" Protocol.parse_error
          (error_code
             (Server.handle_line sv {|{"id":0,"method":"bogus }|}));
        Alcotest.(check string)
          "malformed frames carry a null id"
          {|{"id":null,"error":{"code":-32600,"message":"missing integer \"id\""}}|}
          (Server.handle_line sv {|{"method":"analyze"}|});
        Alcotest.(check int)
          "non-object params" Protocol.invalid_request
          (error_code
             (Server.handle_line sv
                {|{"id":3,"method":"analyze","params":7}|}));
        (* a source that does not parse leaves no session behind *)
        Alcotest.(check int)
          "open of invalid source" Protocol.analysis_error
          (error_code
             (Server.handle_line sv
                (frame 20 "open" ~params:[ ("source", Json.Str "NOT A PROGRAM") ])));
        Alcotest.(check int) "only the good session" 1
          (Server.session_count sv);
        (* shutdown, then everything else is refused *)
        Alcotest.(check string)
          "shutdown acknowledges"
          {|{"id":30,"result":{"stopping":true}}|}
          (Server.handle_line sv (frame 30 "shutdown"));
        Alcotest.(check bool) "stopped" true (Server.stopped sv);
        Alcotest.(check int)
          "post-shutdown requests refused" Protocol.shutting_down
          (error_code
             (Server.handle_line sv
                (frame 31 "analyze" ~params:(session_params 1)))));
    Alcotest.test_case "update error leaves the session intact" `Quick
      (fun () ->
        let sv = server () in
        ignore
          (Server.handle_line sv
             (frame 1 "open" ~params:[ ("source", Json.Str src) ]));
        let before =
          Server.handle_line sv (frame 2 "analyze" ~params:(session_params 1))
        in
        Alcotest.(check int)
          "broken update is an analysis error" Protocol.analysis_error
          (error_code
             (Server.handle_line sv
                (frame 3 "update"
                   ~params:
                     (("source", Json.Str "PROGRAM main\n  oops(")
                     :: session_params 1))));
        let after =
          Server.handle_line sv (frame 4 "analyze" ~params:(session_params 1))
        in
        Alcotest.(check string)
          "same result, modulo request id"
          (Astring.String.cuts ~sep:"\"id\":2" before |> String.concat "")
          (Astring.String.cuts ~sep:"\"id\":4" after |> String.concat ""));
  ]

(* ------------------------------------------------------------------ *)
(* Batch semantics: admission order, coalescing, cache behaviour *)

let payload_of line =
  (* the response with its id stripped, for cross-id comparisons *)
  match Astring.String.cut ~sep:"," line with
  | Some (_, rest) -> rest
  | None -> line

let batch_tests =
  [
    Alcotest.test_case "open and queries in one batch" `Quick (fun () ->
        let sv = server () in
        let responses =
          Server.handle_batch sv
            [
              frame 1 "open" ~params:[ ("source", Json.Str src) ];
              frame 2 "analyze" ~params:(session_params 1);
              frame 3 "analyze" ~params:(session_params 1);
              frame 4 "query"
                ~params:(("proc", Json.Str "work") :: session_params 1);
            ]
        in
        Alcotest.(check int) "one response per request" 4
          (List.length responses);
        (* responses come back in request order *)
        List.iteri
          (fun i line ->
            let id =
              Option.bind (Json.member "id" (Result.get_ok (Json.parse line)))
                Json.to_int
            in
            Alcotest.(check (option int)) "request order" (Some (i + 1)) id)
          responses;
        let a1 = List.nth responses 1 and a2 = List.nth responses 2 in
        Alcotest.(check string)
          "identical analyzes coalesce to identical bytes" (payload_of a1)
          (payload_of a2));
    Alcotest.test_case "warm queries hit the response cache" `Quick
      (fun () ->
        let sv = server () in
        ignore
          (Server.handle_line sv
             (frame 1 "open" ~params:[ ("source", Json.Str src) ]));
        let cold =
          Server.handle_line sv (frame 2 "analyze" ~params:(session_params 1))
        in
        let warm =
          Server.handle_line sv (frame 3 "analyze" ~params:(session_params 1))
        in
        Alcotest.(check string) "byte-identical" (payload_of cold)
          (payload_of warm);
        let stats =
          result_of (Server.handle_line sv (frame 4 "stats"))
        in
        let hits =
          Option.bind (Json.member "cache" stats) (fun c ->
              Option.bind (Json.member "hits" c) Json.to_int)
        in
        Alcotest.(check bool) "cache hit recorded" true (hits >= Some 1));
    Alcotest.test_case "edit-and-revert hits the content key" `Quick
      (fun () ->
        let sv = server () in
        ignore
          (Server.handle_line sv
             (frame 1 "open" ~params:[ ("source", Json.Str src) ]));
        let first =
          Server.handle_line sv (frame 2 "analyze" ~params:(session_params 1))
        in
        ignore
          (Server.handle_line sv
             (frame 3 "update"
                ~params:(("source", Json.Str src_b) :: session_params 1)));
        ignore
          (Server.handle_line sv
             (frame 4 "update"
                ~params:(("source", Json.Str src) :: session_params 1)));
        let reverted =
          Server.handle_line sv (frame 5 "analyze" ~params:(session_params 1))
        in
        Alcotest.(check string)
          "reverted program answers byte-identically" (payload_of first)
          (payload_of reverted));
  ]

(* ------------------------------------------------------------------ *)
(* Soak: streamed edits and queries, bounded heap, warm ≡ one-shot *)

let one_shot_analyze source =
  (* a fresh server's view of the same program: session ids restart at
     1, so the whole response line must match byte for byte *)
  let sv = server () in
  ignore
    (Server.handle_line sv (frame 1 "open" ~params:[ ("source", Json.Str source) ]));
  Server.handle_line sv (frame 2 "analyze" ~params:(session_params 1))

let soak_tests =
  [
    Alcotest.test_case "200-iteration edit/query soak" `Slow (fun () ->
        let sv = server () in
        ignore
          (Server.handle_line sv
             (frame 1 "open" ~params:[ ("source", Json.Str src) ]));
        let golden_a = one_shot_analyze src in
        let golden_b = one_shot_analyze src_b in
        let expected_sub = function
          | Ok r -> (Ipcp.Result.substitution r).Ipcp.Result.total
          | Error e -> Alcotest.failf "one-shot analyze failed: %s" e
        in
        let sub_a = expected_sub (Ipcp.analyze ~config (Ipcp.Source.of_string src)) in
        let watermark = ref 0 in
        for i = 1 to 200 do
          let editing_to_b = i mod 2 = 1 in
          let source = if editing_to_b then src_b else src in
          ignore
            (Server.handle_line sv
               (frame (2 * i) "update"
                  ~params:(("source", Json.Str source) :: session_params 1)));
          let analyze_line =
            Server.handle_line sv
              (frame (2 * i) "analyze" ~params:(session_params 1))
          in
          (* the resident session answers byte-identically to a fresh
             one-shot analysis of the same source (ids aligned) *)
          let golden = if editing_to_b then golden_b else golden_a in
          Alcotest.(check string)
            "warm response = one-shot response" (payload_of golden)
            (payload_of analyze_line);
          if not editing_to_b then begin
            let r = result_of analyze_line in
            Alcotest.(check (option int))
              "substituted matches the API one-shot" (Some sub_a)
              (Option.bind (Json.member "substituted" r) Json.to_int)
          end;
          ignore
            (Server.handle_line sv
               (frame (2 * i + 1) "query"
                  ~params:(("proc", Json.Str "work") :: session_params 1)));
          if i = 50 then begin
            Gc.full_major ();
            watermark := (Gc.stat ()).Gc.live_words
          end
        done;
        Gc.full_major ();
        let final = (Gc.stat ()).Gc.live_words in
        (* resident state must not grow with iteration count: 150 more
           edit/query rounds may not double the live heap *)
        Alcotest.(check bool)
          (Printf.sprintf "live heap bounded (watermark %d, final %d)"
             !watermark final)
          true
          (final < !watermark * 2));
  ]

(* ------------------------------------------------------------------ *)
(* QCheck: response streams are invariant under the jobs setting *)

type op =
  | Analyze
  | Ranges
  | Query of string * string
  | Update of bool  (** true = src_b *)
  | Invalidate of string list

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return Analyze);
        (2, return Ranges);
        ( 4,
          map2
            (fun p w -> Query (p, w))
            (oneofl [ "main"; "work"; "nosuch" ])
            (oneofl [ "constants"; "ranges"; "lints" ]) );
        (2, map (fun b -> Update b) bool);
        ( 2,
          map
            (fun ps -> Invalidate ps)
            (oneofl [ []; [ "work" ]; [ "main"; "work" ] ]) );
      ])

let op_print = function
  | Analyze -> "analyze"
  | Ranges -> "ranges"
  | Query (p, w) -> Printf.sprintf "query(%s,%s)" p w
  | Update b -> Printf.sprintf "update(%b)" b
  | Invalidate ps -> Printf.sprintf "invalidate(%s)" (String.concat "," ps)

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat ";" (List.map op_print ops))
    QCheck.Gen.(list_size (int_range 1 24) op_gen)

let frames_of_ops ops =
  frame 1 "open" ~params:[ ("source", Json.Str src) ]
  :: List.mapi
       (fun i op ->
         let id = i + 2 in
         match op with
         | Analyze -> frame id "analyze" ~params:(session_params 1)
         | Ranges -> frame id "ranges" ~params:(session_params 1)
         | Query (p, w) ->
             frame id "query"
               ~params:
                 (("proc", Json.Str p)
                 :: ("what", Json.Str w)
                 :: session_params 1)
         | Update b ->
             frame id "update"
               ~params:
                 (("source", Json.Str (if b then src_b else src))
                 :: session_params 1)
         | Invalidate ps ->
             frame id "invalidate"
               ~params:
                 (("procs", Json.Arr (List.map (fun p -> Json.Str p) ps))
                 :: session_params 1))
       ops

(* canonical order: by request id (the streams are already emitted in
   input order, so this is also a check that they stay that way) *)
let canonical responses = List.sort compare responses

let determinism_prop =
  QCheck.Test.make ~count:30
    ~name:"response streams identical under jobs=1 and jobs=4" ops_arb
    (fun ops ->
      let frames = frames_of_ops ops in
      let run jobs =
        let sv =
          Server.create ~config:{ config with Ipcp.Config.jobs } ()
        in
        Server.handle_batch sv frames
      in
      let was = !Ipcp_par.Pool.oversubscribe in
      Ipcp_par.Pool.oversubscribe := true;
      Fun.protect
        ~finally:(fun () -> Ipcp_par.Pool.oversubscribe := was)
        (fun () -> canonical (run 1) = canonical (run 4)))

(* the in-process client speaks the same protocol the transports do *)
let client_tests =
  [
    Alcotest.test_case "in-process client round-trip" `Quick (fun () ->
        let cl = Client.in_process (server ()) in
        let sid =
          match
            Client.request cl ~meth:"open" [ ("source", Json.Str src) ]
          with
          | Ok r ->
              Option.get
                (Option.bind (Json.member "session" r) Json.to_int)
          | Error (code, msg) ->
              Alcotest.failf "open failed: [%d] %s" code msg
        in
        (match
           Client.request cl ~meth:"analyze" [ ("session", Json.Int sid) ]
         with
        | Ok r ->
            Alcotest.(check (option int))
              "substituted" (Some 2)
              (Option.bind (Json.member "substituted" r) Json.to_int)
        | Error (code, msg) ->
            Alcotest.failf "analyze failed: [%d] %s" code msg);
        (match Client.request cl ~meth:"nonsense" [] with
        | Ok _ -> Alcotest.fail "nonsense method succeeded"
        | Error (code, _) ->
            Alcotest.(check int)
              "client surfaces error codes" Protocol.method_not_found code);
        Client.close cl);
  ]

let suites =
  [
    ("serve-golden", golden_tests);
    ("serve-batch", batch_tests);
    ("serve-soak", soak_tests);
    ( "serve-determinism",
      List.map QCheck_alcotest.to_alcotest [ determinism_prop ] );
    ("serve-client", client_tests);
  ]
