(* The multicore pipeline's two contracts:

   1. DETERMINISM — analysis results with [jobs = N] are identical to the
      sequential path ([jobs = 1]): the solver fixpoint, the census, the
      lint diagnostics, and the substituted source, on every bundled
      suite program and on randomly generated ones.  The pool makes this
      true by construction (per-task result slots, canonical-order
      joins), and these tests keep it true.

   2. SCHEDULING — the SCC-condensation priority worklist reaches the
      same fixpoint as the paper's FIFO discipline (chaotic iteration of
      monotone functions), and never needs more pops to get there. *)

open Ipcp_frontend
module Pool = Ipcp_par.Pool
module Config = Ipcp_core.Config
module Driver = Ipcp_core.Driver
module Solver = Ipcp_core.Solver
module Clattice = Ipcp_core.Clattice
module Substitute = Ipcp_opt.Substitute
module Lint = Ipcp_analysis.Lint
module Programs = Ipcp_suite.Programs
module Generator = Ipcp_gen.Generator
module SM = Names.SM

let cfg_jobs jobs = { Config.default with Config.jobs }

let vals_equal = SM.equal (SM.equal Clattice.equal)

(* ------------------------------------------------------------------ *)
(* Pool combinators *)

let pool_tests =
  [
    Alcotest.test_case "map_list matches List.map at every width" `Quick
      (fun () ->
        let f x = (x * 37) mod 101 in
        List.iter
          (fun n ->
            let xs = List.init n (fun i -> i) in
            let expect = List.map f xs in
            List.iter
              (fun jobs ->
                Alcotest.(check (list int))
                  (Fmt.str "n=%d jobs=%d" n jobs)
                  expect
                  (Pool.map_list ~jobs f xs))
              [ 1; 2; 3; 4; 8 ])
          [ 0; 1; 2; 7; 100 ]);
    Alcotest.test_case "map_sm is SM.mapi, any width" `Quick (fun () ->
        let m =
          List.fold_left
            (fun m i -> SM.add (Fmt.str "k%02d" i) i m)
            SM.empty
            (List.init 40 (fun i -> i))
        in
        let f k v = Fmt.str "%s=%d" k (v * v) in
        let expect = SM.mapi f m in
        List.iter
          (fun jobs ->
            Alcotest.(check bool)
              (Fmt.str "jobs=%d" jobs)
              true
              (SM.equal String.equal expect (Pool.map_sm ~jobs f m)))
          [ 1; 2; 4 ]);
    Alcotest.test_case "first exception in input order is re-raised" `Quick
      (fun () ->
        let boom i = if i >= 3 then failwith (Fmt.str "task %d" i) else i in
        List.iter
          (fun jobs ->
            match Pool.map_list ~jobs boom (List.init 10 (fun i -> i)) with
            | _ -> Alcotest.fail "expected an exception"
            | exception Failure msg ->
                (* tasks 3..9 all raise; input order picks task 3 *)
                Alcotest.(check string) (Fmt.str "jobs=%d" jobs) "task 3" msg)
          [ 1; 2; 4 ]);
    Alcotest.test_case "nested maps flatten and stay correct" `Quick
      (fun () ->
        let inner x = Pool.map_list ~jobs:4 (fun y -> x + y) [ 1; 2; 3 ] in
        let got = Pool.map_list ~jobs:4 inner [ 10; 20 ] in
        Alcotest.(check (list (list int)))
          "nested" [ [ 11; 12; 13 ]; [ 21; 22; 23 ] ] got);
    Alcotest.test_case "iter_sm runs every task exactly once" `Quick
      (fun () ->
        let m =
          List.fold_left
            (fun m i -> SM.add (Fmt.str "k%02d" i) i m)
            SM.empty
            (List.init 30 (fun i -> i))
        in
        List.iter
          (fun jobs ->
            let hits = Array.make 30 0 in
            Pool.iter_sm ~jobs (fun _ v -> hits.(v) <- hits.(v) + 1) m;
            Alcotest.(check (array int))
              (Fmt.str "jobs=%d" jobs)
              (Array.make 30 1) hits)
          [ 1; 4 ]);
  ]

(* Chunked dispatch: batches large enough to group tasks into
   cost-balanced ranges, forced onto genuinely concurrent lanes with
   the oversubscription hook (the host may have one core).  Skewed
   costs make the chunk boundaries land unevenly, which is exactly
   where an off-by-one in range claiming would show. *)
let with_lanes f =
  Pool.oversubscribe := true;
  Fun.protect ~finally:(fun () -> Pool.oversubscribe := false) f

let chunking_tests =
  [
    Alcotest.test_case "skewed costs: map_array output order preserved"
      `Quick (fun () ->
        with_lanes @@ fun () ->
        let n = 257 in
        let xs = Array.init n (fun i -> i) in
        let costs =
          Array.init n (fun i -> if i mod 17 = 0 then 500 else 1)
        in
        let f x = (x * 31) mod 101 in
        let expect = Array.map f xs in
        List.iter
          (fun jobs ->
            Alcotest.(check (array int))
              (Fmt.str "jobs=%d" jobs)
              expect
              (Pool.map_array ~jobs ~costs f xs))
          [ 2; 3; 8 ]);
    Alcotest.test_case "chunked batches re-raise the first exception"
      `Quick (fun () ->
        with_lanes @@ fun () ->
        (* tasks 97..299 all raise; chunked or not, input order wins *)
        let xs = Array.init 300 (fun i -> i) in
        let costs = Array.init 300 (fun i -> if i < 97 then 50 else 1) in
        let boom i = if i >= 97 then failwith (Fmt.str "task %d" i) else i in
        match Pool.map_array ~jobs:8 ~costs boom xs with
        | _ -> Alcotest.fail "expected an exception"
        | exception Failure msg -> Alcotest.(check string) "first" "task 97" msg);
    Alcotest.test_case "run_chunked hits every index exactly once" `Quick
      (fun () ->
        with_lanes @@ fun () ->
        let n = 300 in
        let costs = Array.init n (fun i -> if i mod 13 = 0 then 200 else 1) in
        (* lanes claim disjoint index ranges, so plain writes suffice *)
        let hits = Array.make n 0 in
        Pool.run_chunked ~jobs:8 ~costs (fun i -> hits.(i) <- hits.(i) + 1);
        Alcotest.(check (array int)) "once each" (Array.make n 1) hits);
    Alcotest.test_case "seq_below keeps small batches on the caller" `Quick
      (fun () ->
        with_lanes @@ fun () ->
        let caller = (Domain.self () :> int) in
        let xs = Array.init 50 (fun i -> i) in
        let doms =
          Pool.map_array ~jobs:8 ~seq_below:max_int
            (fun _ -> (Domain.self () :> int))
            xs
        in
        Alcotest.(check (array int))
          "all on the calling domain" (Array.make 50 caller) doms);
  ]

(* ------------------------------------------------------------------ *)
(* Parallel determinism on the bundled suite *)

(* Everything an analysis run externalises, as comparable values. *)
let observe config (p : Programs.program) =
  let symtab, t =
    Driver.analyze_source ~config ~file:p.Programs.name p.Programs.source
  in
  let sub = Substitute.apply t in
  ( t.Driver.solver.Solver.vals,
    Driver.census t,
    Lint.render_text (Lint.run t),
    Pretty.program_to_string sub.Substitute.program,
    sub.Substitute.total,
    List.map (fun p -> SM.bindings (Driver.constants t p)) symtab.Symtab.order
  )

let determinism_tests =
  [
    Alcotest.test_case "jobs=4 results identical to jobs=1 (12 programs)"
      `Quick (fun () ->
        List.iter
          (fun (p : Programs.program) ->
            let vals1, census1, lint1, src1, total1, consts1 =
              observe (cfg_jobs 1) p
            in
            let vals4, census4, lint4, src4, total4, consts4 =
              observe (cfg_jobs 4) p
            in
            let name = p.Programs.name in
            Alcotest.(check bool)
              (name ^ ": solver fixpoint") true (vals_equal vals1 vals4);
            Alcotest.(check bool)
              (name ^ ": census") true (census1 = census4);
            Alcotest.(check string) (name ^ ": lint") lint1 lint4;
            Alcotest.(check string) (name ^ ": substituted source") src1 src4;
            Alcotest.(check int) (name ^ ": substituted count") total1 total4;
            Alcotest.(check bool)
              (name ^ ": CONSTANTS") true (consts1 = consts4))
          Programs.all);
  ]

(* Same determinism contract on generated programs: seeds and program
   sizes vary, so the partitioning and work skew vary with them. *)
let gen_determinism_prop (seed, n_procs) =
  let src =
    Generator.generate
      ~params:{ Generator.default with Generator.seed; n_procs }
      ()
  in
  let run jobs =
    let _, t =
      Driver.analyze_source ~config:(cfg_jobs jobs) ~file:"<gen>" src
    in
    let sub = Substitute.apply t in
    ( t.Driver.solver.Solver.vals,
      Pretty.program_to_string sub.Substitute.program )
  in
  let vals1, src1 = run 1 in
  let vals4, src4 = run 4 in
  if not (vals_equal vals1 vals4) then
    QCheck.Test.fail_reportf "seed %d procs %d: fixpoints differ" seed n_procs;
  if not (String.equal src1 src4) then
    QCheck.Test.fail_reportf "seed %d procs %d: substituted sources differ"
      seed n_procs;
  true

(* The same contract across call-graph shapes, at jobs=8 with
   oversubscribed lanes — this drives the chunked stage dispatch AND
   the solver's SCC wavefronts (cyclic shapes give non-trivial
   components) on genuinely concurrent domains even on a 1-core host.
   Observed surfaces are the ones CI diffs across job counts: the
   fixpoint, the substituted source, the lint report, and the interval
   JSON. *)
let shapes = Generator.[ Chain; Fanout; Cyclic; Mixed ]

let observe_shaped jobs src =
  let _, t = Driver.analyze_source ~config:(cfg_jobs jobs) ~file:"<gen>" src in
  let sub = Substitute.apply t in
  ( t.Driver.solver.Solver.vals,
    Pretty.program_to_string sub.Substitute.program,
    Lint.render_text (Lint.run t),
    Ipcp_obs.Json.to_string (Ipcp_core.Ranges.json (Driver.analyze_ranges t))
  )

let shaped_determinism_prop (seed, n_procs, shape) =
  let src =
    Generator.generate ~params:(Generator.scaled ~shape ~seed ~n_procs ()) ()
  in
  let vals1, src1, lint1, rng1 = observe_shaped 1 src in
  let vals8, src8, lint8, rng8 =
    with_lanes (fun () -> observe_shaped 8 src)
  in
  let where what =
    Fmt.str "seed %d procs %d shape %s: %s differ" seed n_procs
      (Generator.shape_name shape) what
  in
  if not (vals_equal vals1 vals8) then
    QCheck.Test.fail_report (where "fixpoints");
  if not (String.equal src1 src8) then
    QCheck.Test.fail_report (where "substituted sources");
  if not (String.equal lint1 lint8) then
    QCheck.Test.fail_report (where "lint reports");
  if not (String.equal rng1 rng8) then
    QCheck.Test.fail_report (where "interval JSON");
  true

let gen_determinism_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"generated programs: jobs=4 identical to jobs=1" ~count:20
         QCheck.(pair (make Gen.(int_bound 999)) (make Gen.(int_range 2 16)))
         gen_determinism_prop);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"shaped programs: jobs=8 oversubscribed identical to jobs=1"
         ~count:8
         QCheck.(
           triple
             (make Gen.(int_bound 999))
             (make Gen.(int_range 12 40))
             (make (Gen.oneofl shapes)))
         shaped_determinism_prop);
  ]

(* ------------------------------------------------------------------ *)
(* Chunk boundaries must not disturb the global call-site numbering:
   parallel lowering gives each procedure a pre-computed site-id offset,
   so the ids must be exactly the sequential walk's no matter how the
   chunked dispatch splits the procedure list. *)

let site_numbering_tests =
  [
    Alcotest.test_case
      "parallel lowering keeps sequential call-site numbering" `Quick
      (fun () ->
        with_lanes @@ fun () ->
        let src =
          Generator.generate
            ~params:(Generator.scaled ~shape:Generator.Mixed ~n_procs:120 ())
            ()
        in
        let symtab = Sema.parse_and_analyze ~file:"<sites>" src in
        let ids cfgs =
          SM.map
            (fun (cfg : Ipcp_ir.Cfg.t) ->
              List.map
                (fun (s : Ipcp_ir.Instr.site) -> s.Ipcp_ir.Instr.site_id)
                cfg.Ipcp_ir.Cfg.sites)
            cfgs
        in
        let seq = ids (Ipcp_ir.Lower.lower_program symtab) in
        let _, t =
          Driver.analyze_source ~config:(cfg_jobs 8) ~file:"<sites>" src
        in
        Alcotest.(check bool)
          "site ids identical" true
          (SM.equal (List.equal Int.equal) seq (ids t.Driver.cfgs)))
  ]

(* ------------------------------------------------------------------ *)
(* The parallel SCC wavefront (jobs > 1, finite-height domain) must
   reach the sequential solver's exact fixpoint — deferred
   cross-component contributions are a schedule, not a semantics. *)

let wavefront_tests =
  [
    Alcotest.test_case "wavefront (jobs=8) = sequential fixpoint" `Quick
      (fun () ->
        with_lanes @@ fun () ->
        let check_src name src =
          let _, t =
            Driver.analyze_source ~config:(cfg_jobs 1) ~file:name src
          in
          let solve jobs =
            Solver.solve ~jobs ~symtab:t.Driver.symtab ~cg:t.Driver.cg
              ~jfs:t.Driver.jfs ()
          in
          Alcotest.(check bool)
            (name ^ ": fixpoints agree") true
            (vals_equal (solve 1).Solver.vals (solve 8).Solver.vals)
        in
        List.iter
          (fun (p : Programs.program) ->
            check_src p.Programs.name p.Programs.source)
          Programs.all;
        List.iter
          (fun shape ->
            check_src
              (Generator.shape_name shape)
              (Generator.generate
                 ~params:(Generator.scaled ~shape ~n_procs:60 ())
                 ()))
          shapes);
  ]

(* ------------------------------------------------------------------ *)
(* Worklist scheduling *)

let solve_with strategy (t : Driver.t) =
  Solver.solve ~strategy ~symtab:t.Driver.symtab ~cg:t.Driver.cg
    ~jfs:t.Driver.jfs ()

let scheduling_tests =
  [
    Alcotest.test_case
      "SCC priority order: same fixpoint as FIFO, never more pops" `Quick
      (fun () ->
        List.iter
          (fun (p : Programs.program) ->
            let _, t =
              Driver.analyze_source ~config:(cfg_jobs 1)
                ~file:p.Programs.name p.Programs.source
            in
            let scc = solve_with Solver.Scc_order t in
            let fifo = solve_with Solver.Fifo t in
            let name = p.Programs.name in
            Alcotest.(check bool)
              (name ^ ": fixpoints agree") true
              (vals_equal scc.Solver.vals fifo.Solver.vals);
            let sp = scc.Solver.stats.Solver.pops in
            let fp = fifo.Solver.stats.Solver.pops in
            if sp > fp then
              Alcotest.failf "%s: SCC order used more pops (%d > %d)" name sp
                fp)
          Programs.all);
    Alcotest.test_case "driver's solver uses the SCC order" `Quick (fun () ->
        (* the pipeline result must equal a fresh solve under either
           discipline — the strategy is a schedule, not a semantics *)
        let p = List.hd Programs.all in
        let _, t =
          Driver.analyze_source ~config:(cfg_jobs 1) ~file:p.Programs.name
            p.Programs.source
        in
        let fifo = solve_with Solver.Fifo t in
        Alcotest.(check bool)
          "pipeline fixpoint = FIFO fixpoint" true
          (vals_equal t.Driver.solver.Solver.vals fifo.Solver.vals));
  ]

let suites =
  [
    ("par-pool", pool_tests);
    ("par-chunking", chunking_tests);
    ("par-determinism", determinism_tests);
    ("par-gen-determinism", gen_determinism_tests);
    ("par-sites", site_numbering_tests);
    ("par-wavefront", wavefront_tests);
    ("par-scheduling", scheduling_tests);
  ]
