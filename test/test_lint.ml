(* Tests for the static-analysis subsystem: the structural IR/SSA
   verifier (pass sanitizer) and the interprocedural lint engine.

   The verifier is probed with deliberately corrupted CFGs — every
   rejection must name the offending block.  The lint engine is checked
   against hand-written programs with known defects, and differentially
   against the interpreter: a definite division-by-constant-zero finding
   must coincide with a runtime fault. *)

open Ipcp_frontend
open Names
module Ast = Ipcp_frontend.Ast
module Instr = Ipcp_ir.Instr
module Cfg = Ipcp_ir.Cfg
module Ssa = Ipcp_ir.Ssa
module Verify = Ipcp_verify.Verify
module Lint = Ipcp_analysis.Lint
module Config = Ipcp_core.Config
module Driver = Ipcp_core.Driver
module Interp = Ipcp_interp.Interp
module Programs = Ipcp_suite.Programs

(* ------------------------------------------------------------------ *)
(* Helpers *)

let block ?(phis = []) ?(instrs = []) bid term =
  { Cfg.bid; phis; instrs; term }

let cfg ?(name = "bad") ?(sites = []) blocks =
  {
    Cfg.proc_name = name;
    kind = Ast.Subroutine;
    blocks = Array.of_list blocks;
    sites;
  }

let kinds vs = List.map (fun v -> v.Verify.v_kind) vs

let messages vs = String.concat "\n" (List.map Verify.violation_to_string vs)

let analyze ?config src =
  let symtab = Sema.parse_and_analyze ~file:"<lint>" src in
  (symtab, Driver.analyze ?config symtab)

let lint src = Lint.run (snd (analyze src))

let with_id i fs = List.filter (fun f -> Lint.id f.Lint.f_check = i) fs

let has_id i fs = with_id i fs <> []

(* ------------------------------------------------------------------ *)
(* Verifier: corrupted CFGs are rejected, naming the bad block *)

let true_cond = Cfg.Crel (Ast.Req, Instr.Oint 0, Instr.Oint 0)

let verifier_tests =
  [
    Alcotest.test_case "successor out of range names the bad block" `Quick
      (fun () ->
        let vs = Verify.check_lowered (cfg [ block 0 (Cfg.Tjump 5) ]) in
        Alcotest.(check bool) "rejected" true (vs <> []);
        let v = List.hd vs in
        Alcotest.(check int) "block" 0 v.Verify.v_block;
        Alcotest.(check bool) "names the offending block" true
          (Astring.String.is_infix ~affix:"bad/B0" (messages vs));
        Alcotest.(check bool) "names the bad successor" true
          (Astring.String.is_infix ~affix:"B5" (messages vs)));
    Alcotest.test_case "block id mismatch is rejected" `Quick (fun () ->
        let vs =
          Verify.check_lowered
            (cfg [ block 1 (Cfg.Tjump 0); block 0 Cfg.Treturn ])
        in
        Alcotest.(check bool) "rejected" true
          (List.mem Verify.Vblock (kinds vs)));
    Alcotest.test_case "empty CFG is rejected" `Quick (fun () ->
        Alcotest.(check bool) "rejected" true (Verify.check_lowered (cfg []) <> []));
    Alcotest.test_case "phis before SSA construction are rejected" `Quick
      (fun () ->
        let phi = { Cfg.dest = "x#1"; srcs = [] } in
        let vs = Verify.check_lowered (cfg [ block ~phis:[ phi ] 0 Cfg.Treturn ]) in
        Alcotest.(check bool) "rejected" true (List.mem Verify.Vphi (kinds vs)));
    Alcotest.test_case "double SSA definition is rejected" `Quick (fun () ->
        let instrs =
          [
            Instr.Idef ("x#1", Instr.Rcopy (Instr.Oint 1), None);
            Instr.Idef ("x#1", Instr.Rcopy (Instr.Oint 2), None);
          ]
        in
        let vs = Verify.check_ssa (cfg [ block ~instrs 0 Cfg.Treturn ]) in
        Alcotest.(check bool) "rejected" true (List.mem Verify.Vdef (kinds vs));
        Alcotest.(check bool) "names x#1" true
          (Astring.String.is_infix ~affix:"x#1" (messages vs)));
    Alcotest.test_case "use without a definition is rejected" `Quick (fun () ->
        let instrs =
          [ Instr.Idef ("y#1", Instr.Rcopy (Instr.Ovar ("x#1", None)), None) ]
        in
        let vs = Verify.check_ssa (cfg [ block ~instrs 0 Cfg.Treturn ]) in
        Alcotest.(check bool) "rejected" true (List.mem Verify.Vdom (kinds vs)));
    Alcotest.test_case "use not dominated by its definition is rejected" `Quick
      (fun () ->
        (* B0 branches to B1 and B2; B1 defines x#1, B2 uses it *)
        let b0 = block 0 (Cfg.Tbranch (true_cond, 1, 2)) in
        let b1 =
          block ~instrs:[ Instr.Idef ("x#1", Instr.Rcopy (Instr.Oint 1), None) ] 1
            Cfg.Treturn
        in
        let b2 =
          block
            ~instrs:[ Instr.Idef ("y#1", Instr.Rcopy (Instr.Ovar ("x#1", None)), None) ]
            2 Cfg.Treturn
        in
        let vs = Verify.check_ssa (cfg [ b0; b1; b2 ]) in
        Alcotest.(check bool) "rejected" true (List.mem Verify.Vdom (kinds vs));
        Alcotest.(check bool) "names B2" true
          (List.exists (fun v -> v.Verify.v_block = 2) vs));
    Alcotest.test_case "phi source that is not a predecessor is rejected"
      `Quick (fun () ->
        (* B3's only predecessors are B1 and B2, but the phi claims B0 *)
        let b0 = block 0 (Cfg.Tbranch (true_cond, 1, 2)) in
        let b1 = block 1 (Cfg.Tjump 3) in
        let b2 = block 2 (Cfg.Tjump 3) in
        let phi = { Cfg.dest = "x#1"; srcs = [ (0, "x#0"); (1, "x#0") ] } in
        let b3 = block ~phis:[ phi ] 3 Cfg.Treturn in
        let vs = Verify.check_ssa (cfg [ b0; b1; b2; b3 ]) in
        Alcotest.(check bool) "rejected" true (List.mem Verify.Vedge (kinds vs)));
    Alcotest.test_case "phi arity below predecessor count is rejected" `Quick
      (fun () ->
        let b0 = block 0 (Cfg.Tbranch (true_cond, 1, 2)) in
        let b1 = block 1 (Cfg.Tjump 3) in
        let b2 = block 2 (Cfg.Tjump 3) in
        let phi = { Cfg.dest = "x#1"; srcs = [ (1, "x#0") ] } in
        let b3 = block ~phis:[ phi ] 3 Cfg.Treturn in
        let vs = Verify.check_ssa (cfg [ b0; b1; b2; b3 ]) in
        Alcotest.(check bool) "rejected" true (List.mem Verify.Vphi (kinds vs)));
    Alcotest.test_case "call arity mismatch vs symbol table is rejected" `Quick
      (fun () ->
        let symtab =
          Sema.parse_and_analyze ~file:"<v>"
            {|
PROGRAM p
  INTEGER x
  x = 1
  CALL q(x)
END
SUBROUTINE q(m)
  INTEGER m
  PRINT *, m
END
|}
        in
        let site =
          {
            Instr.site_id = 99;
            caller = "bad";
            callee = "q";
            args = [];
            syntactic = [];
            result = None;
            s_loc = Loc.dummy;
          }
        in
        let b0 = block ~instrs:[ Instr.Icall site ] 0 Cfg.Treturn in
        let vs = Verify.check_lowered ~symtab (cfg ~sites:[ site ] [ b0 ]) in
        Alcotest.(check bool) "rejected" true (List.mem Verify.Vcall (kinds vs)));
    Alcotest.test_case "Rresult referencing an unknown site is rejected" `Quick
      (fun () ->
        let instrs = [ Instr.Idef ("t#1", Instr.Rresult 42, None) ] in
        let vs = Verify.check_ssa (cfg [ block ~instrs 0 Cfg.Treturn ]) in
        Alcotest.(check bool) "rejected" true (List.mem Verify.Vcall (kinds vs)));
    Alcotest.test_case "expect_ok raises a Diag analysis error" `Quick
      (fun () ->
        match
          Diag.guard (fun () ->
              Verify.expect_ok ~what:"test"
                (Verify.check_lowered (cfg [ block 0 (Cfg.Tjump 5) ])))
        with
        | Ok () -> Alcotest.fail "expected Diag.Error"
        | Error d ->
            Alcotest.(check bool) "analysis phase" true
              (d.Diag.phase = Diag.Analysis);
            Alcotest.(check bool) "names stage" true
              (Astring.String.is_infix ~affix:"test" d.Diag.msg));
    Alcotest.test_case "well-formed pipeline IR passes all checks" `Quick
      (fun () ->
        let symtab, t = analyze (Ipcp_gen.Generator.generate ()) in
        SM.iter
          (fun _ c ->
            Alcotest.(check (list string)) "lowered clean" []
              (List.map Verify.violation_to_string (Verify.check_lowered ~symtab c)))
          t.Driver.cfgs;
        SM.iter
          (fun _ (conv : Ssa.conv) ->
            Alcotest.(check (list string)) "ssa clean" []
              (List.map Verify.violation_to_string
                 (Verify.check_ssa ~symtab conv.Ssa.ssa)))
          t.Driver.convs);
  ]

(* ------------------------------------------------------------------ *)
(* Lint engine: hand-written programs with known defects *)

let src_divzero =
  {|
PROGRAM p
  INTEGER n
  n = 0
  CALL q(n)
END
SUBROUTINE q(m)
  INTEGER m, x
  x = 1 / m
  PRINT *, x
END
|}

let lint_tests =
  [
    Alcotest.test_case "E001: division by a propagated constant zero" `Quick
      (fun () ->
        let fs = with_id "IPCP-E001" (lint src_divzero) in
        Alcotest.(check int) "one finding" 1 (List.length fs);
        let f = List.hd fs in
        Alcotest.(check string) "procedure" "q" f.Lint.f_proc;
        Alcotest.(check int) "line of the division" 9 f.Lint.f_loc.Loc.line;
        Alcotest.(check bool) "error severity" true
          (Lint.finding_severity f = Diag.Severity.Error));
    Alcotest.test_case "E001: division by a literal zero, with location"
      `Quick (fun () ->
        let fs =
          with_id "IPCP-E001"
            (lint {|
PROGRAM p
  INTEGER x
  x = 1 / 0
  PRINT *, x
END
|})
        in
        Alcotest.(check int) "one finding" 1 (List.length fs);
        Alcotest.(check int) "line" 4 (List.hd fs).Lint.f_loc.Loc.line);
    Alcotest.test_case "E001: MOD by a propagated zero" `Quick (fun () ->
        let fs =
          lint
            {|
PROGRAM p
  INTEGER n
  n = 0
  CALL q(n)
END
SUBROUTINE q(m)
  INTEGER m, x
  x = MOD(7, m)
  PRINT *, x
END
|}
        in
        Alcotest.(check bool) "flagged" true (has_id "IPCP-E001" fs));
    Alcotest.test_case "E001 suppressed behind an always-false branch" `Quick
      (fun () ->
        let fs =
          lint
            {|
PROGRAM p
  INTEGER x
  x = 5
  IF (x .EQ. 6) THEN
    PRINT *, 1 / 0
  ENDIF
END
|}
        in
        Alcotest.(check bool) "no E001" false (has_id "IPCP-E001" fs);
        Alcotest.(check bool) "W003 for the constant condition" true
          (has_id "IPCP-W003" fs));
    Alcotest.test_case "E002: constant subscript out of bounds" `Quick
      (fun () ->
        let fs =
          lint
            {|
PROGRAM p
  INTEGER a(5), n
  n = 9
  a(n) = 1
  PRINT *, a(n)
END
|}
        in
        let es = with_id "IPCP-E002" fs in
        Alcotest.(check int) "store and load flagged" 2 (List.length es));
    Alcotest.test_case "W003: always-true and always-false conditions" `Quick
      (fun () ->
        let fs =
          lint
            {|
PROGRAM p
  INTEGER n
  n = 3
  IF (n .GT. 0) THEN
    PRINT *, 1
  ENDIF
  WHILE (n .LT. 0)
    PRINT *, 2
  ENDWHILE
END
|}
        in
        Alcotest.(check int) "two findings" 2
          (List.length (with_id "IPCP-W003" fs)));
    Alcotest.test_case "W004: procedure unreachable from the entry" `Quick
      (fun () ->
        let fs =
          lint
            {|
PROGRAM p
  PRINT *, 1
END
SUBROUTINE orphan(x)
  INTEGER x
  PRINT *, x
END
|}
        in
        Alcotest.(check bool) "flagged" true (has_id "IPCP-W004" fs));
    Alcotest.test_case "W005: formal never referenced" `Quick (fun () ->
        let fs =
          lint
            {|
PROGRAM p
  INTEGER a
  a = 1
  CALL q(a, 2)
END
SUBROUTINE q(used, unused)
  INTEGER used, unused
  PRINT *, used
END
|}
        in
        let ws = with_id "IPCP-W005" fs in
        Alcotest.(check int) "one finding" 1 (List.length ws);
        Alcotest.(check bool) "names the formal" true
          (Astring.String.is_infix ~affix:"unused" (List.hd ws).Lint.f_msg));
    Alcotest.test_case "W005 not raised for write-only (out) formals" `Quick
      (fun () ->
        let fs =
          lint
            {|
PROGRAM p
  INTEGER r
  CALL q(r)
  PRINT *, r
END
SUBROUTINE q(out)
  INTEGER out
  out = 42
END
|}
        in
        Alcotest.(check bool) "no W005" false (has_id "IPCP-W005" fs));
    Alcotest.test_case "W006: use with no reaching definition" `Quick
      (fun () ->
        let fs =
          lint {|
PROGRAM p
  INTEGER x, y
  y = x + 1
  PRINT *, y
END
|}
        in
        let ws = with_id "IPCP-W006" fs in
        Alcotest.(check int) "one finding" 1 (List.length ws);
        Alcotest.(check int) "line of the use" 4 (List.hd ws).Lint.f_loc.Loc.line);
    Alcotest.test_case "W006 not raised when a definition reaches every path"
      `Quick (fun () ->
        let fs =
          lint
            {|
PROGRAM p
  INTEGER x, y, n
  READ *, n
  IF (n .GT. 0) THEN
    x = 1
  ELSE
    x = 2
  ENDIF
  y = x + 1
  PRINT *, y
END
|}
        in
        Alcotest.(check bool) "no W006" false (has_id "IPCP-W006" fs));
    Alcotest.test_case "I007: formal constant at every call site" `Quick
      (fun () ->
        let fs = lint src_divzero in
        let is = with_id "IPCP-I007" fs in
        Alcotest.(check int) "one finding" 1 (List.length is);
        Alcotest.(check bool) "info severity" true
          (Lint.finding_severity (List.hd is) = Diag.Severity.Info));
    Alcotest.test_case "clean program produces no findings" `Quick (fun () ->
        let fs =
          lint
            {|
PROGRAM p
  INTEGER n
  READ *, n
  CALL q(n)
END
SUBROUTINE q(m)
  INTEGER m
  PRINT *, m + 1
END
|}
        in
        Alcotest.(check int) "no findings" 0 (List.length fs));
    Alcotest.test_case "enabled filter disables checks" `Quick (fun () ->
        let _, t = analyze src_divzero in
        let fs =
          Lint.run ~enabled:(fun c -> c <> Lint.Div_by_zero) t
        in
        Alcotest.(check bool) "E001 gone" false (has_id "IPCP-E001" fs));
    Alcotest.test_case "check ids round-trip" `Quick (fun () ->
        List.iter
          (fun c ->
            match Lint.check_of_id (Lint.id c) with
            | Some c' when c' = c -> ()
            | _ -> Alcotest.failf "id %s does not round-trip" (Lint.id c))
          Lint.all_checks);
    Alcotest.test_case "JSON rendering carries checks and summary" `Quick
      (fun () ->
        let json = Lint.render_json (lint src_divzero) in
        List.iter
          (fun affix ->
            Alcotest.(check bool) affix true
              (Astring.String.is_infix ~affix json))
          [
            "\"check\":\"IPCP-E001\"";
            "\"severity\":\"error\"";
            "\"line\":9";
            "\"procedure\":\"q\"";
            "\"summary\"";
            "\"errors\":1";
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* Differential property: a definite division-by-constant-zero finding
   must coincide with an interpreter fault (lint agrees with the runtime
   semantics), and clean divisions must not fault. *)

let faulting_sources =
  [
    ( "literal zero in main",
      {|
PROGRAM p
  INTEGER x
  x = 1 / 0
  PRINT *, x
END
|} );
    ("propagated zero through a formal", src_divzero);
    ( "propagated zero through COMMON",
      {|
PROGRAM p
  COMMON /g/ d
  d = 0
  CALL q()
END
SUBROUTINE q()
  COMMON /g/ d
  INTEGER x
  x = 10 / d
  PRINT *, x
END
|} );
    ( "zero computed from propagated constants",
      {|
PROGRAM p
  INTEGER n
  n = 2
  CALL q(n)
END
SUBROUTINE q(m)
  INTEGER m, x
  x = 1 / (m - 2)
  PRINT *, x
END
|} );
  ]

let differential_tests =
  [
    Alcotest.test_case "definite E001 findings fault in the interpreter"
      `Quick (fun () ->
        List.iter
          (fun (name, src) ->
            let symtab, t = analyze src in
            let fs = Lint.run t in
            if not (has_id "IPCP-E001" fs) then
              Alcotest.failf "%s: lint did not flag the division" name;
            let r = Interp.run symtab in
            match r.Interp.status with
            | Interp.Fault m ->
                Alcotest.(check bool)
                  (name ^ ": fault is the division") true
                  (Astring.String.is_infix ~affix:"division by zero" m)
            | s ->
                Alcotest.failf "%s: expected a fault, got %a" name
                  Interp.pp_status s)
          faulting_sources);
    Alcotest.test_case "E002 findings fault as subscript errors" `Quick
      (fun () ->
        let src =
          {|
PROGRAM p
  INTEGER a(5), n
  n = 9
  a(n) = 1
  PRINT *, a(n)
END
|}
        in
        let symtab, t = analyze src in
        Alcotest.(check bool) "flagged" true (has_id "IPCP-E002" (Lint.run t));
        match (Interp.run symtab).Interp.status with
        | Interp.Fault m ->
            Alcotest.(check bool) "subscript fault" true
              (Astring.String.is_infix ~affix:"out of bounds" m)
        | s -> Alcotest.failf "expected a fault, got %a" Interp.pp_status s);
    Alcotest.test_case "division by a nonzero constant neither flags nor faults"
      `Quick (fun () ->
        let src =
          {|
PROGRAM p
  INTEGER n
  n = 4
  CALL q(n)
END
SUBROUTINE q(m)
  INTEGER m, x
  x = 100 / m
  PRINT *, x
END
|}
        in
        let symtab, t = analyze src in
        Alcotest.(check bool) "not flagged" false
          (has_id "IPCP-E001" (Lint.run t));
        match (Interp.run symtab).Interp.status with
        | Interp.Completed | Interp.Stopped -> ()
        | s -> Alcotest.failf "unexpected status %a" Interp.pp_status s);
  ]

(* ------------------------------------------------------------------ *)
(* Acceptance over the bundled suites: the verifier is clean on every
   program, lint produces at least one true diagnostic overall, and no
   suite program carries an error-severity finding (the CI gate). *)

let suite_tests =
  [
    Alcotest.test_case "suites: verifier clean, lint finds diagnostics"
      `Quick (fun () ->
        let total = ref 0 in
        List.iter
          (fun (p : Programs.program) ->
            let symtab, t =
              let symtab =
                Sema.parse_and_analyze ~file:p.Programs.name p.Programs.source
              in
              (symtab, Driver.analyze symtab)
            in
            SM.iter
              (fun _ c ->
                Alcotest.(check (list string))
                  (p.Programs.name ^ " lowered clean") []
                  (List.map Verify.violation_to_string
                     (Verify.check_lowered ~symtab c)))
              t.Driver.cfgs;
            SM.iter
              (fun _ (conv : Ssa.conv) ->
                Alcotest.(check (list string))
                  (p.Programs.name ^ " ssa clean") []
                  (List.map Verify.violation_to_string
                     (Verify.check_ssa ~symtab conv.Ssa.ssa)))
              t.Driver.convs;
            let fs = Lint.run t in
            let e, _, _ = Lint.summary fs in
            Alcotest.(check int) (p.Programs.name ^ " has no errors") 0 e;
            total := !total + List.length fs)
          Programs.all;
        Alcotest.(check bool) "at least one diagnostic across the suites" true
          (!total >= 1));
  ]

let suites =
  [
    ("verify", verifier_tests);
    ("lint", lint_tests);
    ("lint-differential", differential_tests);
    ("lint-suite", suite_tests);
  ]
